"""Tests for the always-on serving layer (repro.cluster.service).

Every timing-sensitive scenario runs on the deterministic
virtual-clock event loop (:mod:`repro.testing.clock`) with
``dispatch="inline"``: virtual time advances only when the loop would
block on a timer, so micro-batch window cuts — *which batch each
request lands in* — are exact and identical on every machine.  The
suite covers:

* micro-batch cut determinism (max_batch, max_wait window, straggler
  admission) and FIFO fairness across batches;
* barrier semantics: ``insert()`` never overlaps a batch, rolls the
  index epoch, and purges the registry before the next cut;
* lifecycle: drain stop serves everything admitted, non-drain stop
  fails pending requests, post-stop submissions are rejected;
* :class:`~repro.cluster.service.HotQueryRegistry` unit behaviour
  (fingerprints, TTL/LRU eviction, epoch staleness);
* warm recurring queries on tie-heavy data staying bit-identical to
  ``plan="single"`` (the strict ``nextafter`` cutoff contract);
* the persistent shared-gather store: staggered share-group members
  must not re-gather leaves their representative already gathered.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.cluster.batch import BatchQueryPlanner
from repro.cluster.rdd import ProbeCache
from repro.cluster.service import HotQueryRegistry, ReposeService
from repro.exceptions import ServiceClosedError
from repro.repose import Repose
from repro.testing import run_virtual
from repro.types import Trajectory, TrajectoryDataset

SPAN = 8.0


def _trajectories(count: int, seed: int = 7,
                  duplicate_every: int = 0) -> list[Trajectory]:
    """Random walks; with ``duplicate_every`` = d, trajectory i >= d
    reuses the points of trajectory i - d (exact distance ties)."""
    rng = np.random.default_rng(seed)
    out: list[Trajectory] = []
    for i in range(count):
        if duplicate_every and i >= duplicate_every:
            out.append(Trajectory(out[i - duplicate_every].points.copy(),
                                  traj_id=i))
            continue
        n = int(rng.integers(4, 14))
        start = rng.uniform(0.1 * SPAN, 0.9 * SPAN, 2)
        steps = rng.normal(0.0, 0.04 * SPAN, (n - 1, 2))
        points = np.vstack([start, start + np.cumsum(steps, axis=0)])
        np.clip(points, 0.001, SPAN - 0.001, out=points)
        out.append(Trajectory(points, traj_id=i))
    return out


def _build_engine(count: int = 40, seed: int = 7, measure: str = "hausdorff",
                  duplicate_every: int = 0, **build_options):
    dataset = TrajectoryDataset(
        name="service-test",
        trajectories=_trajectories(count, seed=seed,
                                   duplicate_every=duplicate_every))
    return Repose.build(dataset, measure=measure, delta=0.5,
                        num_partitions=4, **build_options)


def _single(engine, query, k):
    return engine.top_k(query, k, plan="single").result.items


@pytest.fixture(scope="module")
def engine():
    """A shared read-only engine (no test here may insert into it)."""
    return _build_engine()


class TestMicroBatchCuts:
    def test_cut_at_max_batch_then_window(self, engine):
        queries = engine.dataset.trajectories[:5]

        async def scenario():
            async with engine.serve(max_wait_ms=5.0, max_batch=3,
                                    dispatch="inline") as service:
                first = [await service.submit(q, 4) for q in queries[:3]]
                head = await asyncio.gather(*first)
                rest = [await service.submit(q, 4) for q in queries[3:]]
                tail = await asyncio.gather(*rest)
                return service, head + tail

        service, outcomes = run_virtual(scenario())
        # Three back-to-back submissions fill max_batch and cut
        # immediately; the remaining two cut at window expiry.
        assert service.stats.batch_sizes == [3, 2]
        for query, outcome in zip(queries, outcomes):
            assert outcome.result.items == _single(engine, query, 4)
            assert outcome.complete and outcome.exact

    def test_window_admits_stragglers_deterministically(self, engine):
        queries = engine.dataset.trajectories[:3]

        async def scenario():
            async with engine.serve(max_wait_ms=5.0, max_batch=8,
                                    dispatch="inline") as service:
                f0 = await service.submit(queries[0], 3)
                await asyncio.sleep(0.002)  # virtual ms: inside window
                f1 = await service.submit(queries[1], 3)
                await asyncio.gather(f0, f1)
                f2 = await service.submit(queries[2], 3)
                await f2
                return service

        service = run_virtual(scenario())
        # The straggler lands in the first window; the late request
        # opens a second one.
        assert service.stats.batch_sizes == [2, 1]
        # Exact virtual-clock latencies: the window holds the first
        # request the full 5 ms, the straggler the remaining 3 ms.
        assert service.stats.latencies[0] == pytest.approx(0.005)
        assert service.stats.latencies[1] == pytest.approx(0.003)

    def test_backlog_batches_fifo(self, engine):
        queries = engine.dataset.trajectories[:10]
        completion_order: list[int] = []

        async def scenario():
            async with engine.serve(max_wait_ms=5.0, max_batch=4,
                                    dispatch="inline") as service:
                futures = []
                for i, q in enumerate(queries):
                    future = await service.submit(q, 3)
                    future.add_done_callback(
                        lambda _f, i=i: completion_order.append(i))
                    futures.append(future)
                return service, await asyncio.gather(*futures)

        service, outcomes = run_virtual(scenario())
        # A 10-deep backlog drains as full batches plus a remainder,
        # in strict admission order.
        assert service.stats.batch_sizes == [4, 4, 2]
        assert completion_order == list(range(10))
        for query, outcome in zip(queries, outcomes):
            assert outcome.result.items == _single(engine, query, 3)

    def test_mixed_k_requests_grouped_not_crossed(self, engine):
        queries = engine.dataset.trajectories[:4]
        ks = [2, 5, 2, 5]

        async def scenario():
            async with engine.serve(max_wait_ms=5.0, max_batch=4,
                                    dispatch="inline") as service:
                futures = [await service.submit(q, k)
                           for q, k in zip(queries, ks)]
                return service, await asyncio.gather(*futures)

        service, outcomes = run_virtual(scenario())
        assert service.stats.batches == 1  # one cut, two k-groups
        for query, k, outcome in zip(queries, ks, outcomes):
            assert len(outcome.result.items) == k
            assert outcome.result.items == _single(engine, query, k)


class TestBarriersAndLifecycle:
    def test_insert_is_a_barrier_and_rolls_the_epoch(self):
        engine = _build_engine(seed=11)
        query = engine.dataset.trajectories[5]
        k = 5
        pre = _single(engine, query, k)
        # A near-copy of the query: certain to enter its top-k.
        newcomer = Trajectory(query.points + 1e-6, traj_id=5000)
        epoch_before = engine.context.probe_cache.epoch

        async def scenario():
            service = engine.serve(max_wait_ms=2.0, max_batch=8,
                                   dispatch="inline")
            async with service:
                fa = await service.submit(query, k)
                loop = asyncio.get_running_loop()
                ins = loop.create_task(service.insert(newcomer))
                await asyncio.sleep(0)  # let insert() enqueue its barrier
                fb = await service.submit(query, k)
                a = await fa
                b = await fb
                await ins
                return service, a, b

        service, a, b = run_virtual(scenario())
        # The barrier cut the window: one single-request batch each
        # side of the write, never a batch spanning it.
        assert service.stats.batch_sizes == [1, 1]
        assert service.stats.inserts == 1
        assert a.result.items == pre
        assert 5000 not in [tid for _, tid in a.result.items]
        # The second request ran against the post-insert index and a
        # purged registry: it must see the newcomer.
        assert 5000 in [tid for _, tid in b.result.items]
        assert b.result.items == _single(engine, query, k)
        assert engine.context.probe_cache.epoch == epoch_before + 1
        counters = service.registry.counters()
        assert counters["epoch"] == engine.context.probe_cache.epoch
        assert counters["invalidations"] >= 1

    def test_drain_stop_serves_every_admitted_request(self, engine):
        queries = engine.dataset.trajectories[:5]

        async def scenario():
            service = engine.serve(max_wait_ms=5.0, max_batch=2,
                                   dispatch="inline")
            futures = [await service.submit(q, 3) for q in queries]
            await service.stop(drain=True)
            return service, await asyncio.gather(*futures)

        service, outcomes = run_virtual(scenario())
        assert not service.running
        assert sum(service.stats.batch_sizes) == 5
        assert service.stats.drained == 5
        for query, outcome in zip(queries, outcomes):
            assert outcome.result.items == _single(engine, query, 3)

    def test_nondrain_stop_fails_pending(self, engine):
        queries = engine.dataset.trajectories[:3]

        async def scenario():
            service = engine.serve(max_wait_ms=5.0, max_batch=8,
                                   dispatch="inline")
            futures = [await service.submit(q, 3) for q in queries]
            await service.stop(drain=False)
            failures = []
            for future in futures:
                with pytest.raises(ServiceClosedError):
                    await future
                failures.append(True)
            return service, failures

        service, failures = run_virtual(scenario())
        assert failures == [True, True, True]
        assert service.stats.batches == 0

    def test_submit_and_start_after_stop_are_rejected(self, engine):
        query = engine.dataset.trajectories[0]

        async def scenario():
            service = engine.serve(dispatch="inline")
            async with service:
                assert service.running
                await service.top_k(query, 3)
            assert not service.running
            await service.stop()  # idempotent
            with pytest.raises(ServiceClosedError):
                await service.submit(query, 3)
            with pytest.raises(ServiceClosedError):
                await service.insert(query)
            with pytest.raises(ServiceClosedError):
                await service.start()
            return service

        service = run_virtual(scenario())
        assert service.stats.rejected == 2

    def test_group_failure_is_isolated(self, monkeypatch):
        engine = _build_engine(seed=13)
        good, bad = engine.dataset.trajectories[:2]
        real_top_k_batch = engine.top_k_batch

        def poisoned(queries, k, **kwargs):
            if k == 7:
                raise RuntimeError("injected group failure")
            return real_top_k_batch(queries, k, **kwargs)

        monkeypatch.setattr(engine, "top_k_batch", poisoned)

        async def scenario():
            async with engine.serve(max_wait_ms=5.0, max_batch=4,
                                    dispatch="inline") as service:
                ok = await service.submit(good, 3)
                boom = await service.submit(bad, 7)
                outcome = await ok
                with pytest.raises(RuntimeError, match="injected"):
                    await boom
                # The service survives the group failure.
                later = await service.top_k(good, 3)
                return service, outcome, later

        service, outcome, later = run_virtual(scenario())
        assert outcome.result.items == _single(engine, good, 3)
        assert later.result.items == outcome.result.items
        assert service.stats.batches == 2


class _StepClock:
    """A manually advanced clock for deterministic TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _query(seed: int = 0) -> Trajectory:
    rng = np.random.default_rng(seed)
    return Trajectory(rng.uniform(0.1, 7.9, (5, 2)), traj_id=10_000 + seed)


def _items(n: int = 5) -> list:
    return [(float(i), 100 + i) for i in range(1, n + 1)]


class TestHotQueryRegistry:
    def test_fingerprint_distinguishes_dqp(self):
        query = _query(1)
        bare = ProbeCache.fingerprint(query)
        with_dqp = ProbeCache.fingerprint(query, np.array([1.0, 2.0]))
        other_dqp = ProbeCache.fingerprint(query, np.array([1.0, 2.5]))
        assert len({bare, with_dqp, other_dqp}) == 3

    def test_planner_fingerprint_rejects_unknown_kwargs(self):
        query = _query(2)
        assert BatchQueryPlanner._registry_fingerprint(
            query, {"dqp": np.array([1.0])}) is not None
        assert BatchQueryPlanner._registry_fingerprint(query, {}) is not None
        # Any kwarg the registry does not understand disables reuse:
        # the stored threshold would not be certified for that search.
        assert BatchQueryPlanner._registry_fingerprint(
            query, {"dqp": None, "mystery": 1}) is None

    def test_ttl_boundary(self):
        clock = _StepClock()
        registry = HotQueryRegistry(capacity=8, ttl_seconds=10.0,
                                    clock=clock)
        registry.put(b"fp", _query(3), _items())
        clock.now = 10.0  # exactly at the TTL: still valid
        assert registry.get(b"fp", 5) is not None
        clock.now = 10.000001  # past it: expired and dropped on sight
        assert registry.get(b"fp", 5) is None
        assert len(registry) == 0

    def test_lru_eviction_respects_get_refresh(self):
        registry = HotQueryRegistry(capacity=2)
        registry.put(b"a", _query(4), _items())
        registry.put(b"b", _query(5), _items())
        assert registry.get(b"a", 5) is not None  # refresh a
        registry.put(b"c", _query(6), _items())  # evicts b, not a
        assert registry.evictions == 1
        assert registry.get(b"a", 5) is not None
        assert registry.get(b"b", 5) is None
        assert registry.get(b"c", 5) is not None

    def test_epoch_roll_purges_and_stale_put_is_dropped(self):
        cache = ProbeCache()
        registry = HotQueryRegistry(probe_cache=cache, capacity=8)
        registry.put(b"fp", _query(7), _items())
        assert len(registry) == 1
        start_epoch = registry.epoch
        cache.bump_epoch()
        assert len(registry) == 0
        assert registry.invalidations == 1
        assert registry.epoch == cache.epoch
        # A batch that started before the write arrives late: dropped.
        registry.put(b"fp", _query(7), _items(), epoch=start_epoch)
        assert len(registry) == 0
        assert registry.get(b"fp", 5) is None

    def test_deeper_entry_is_kept_and_depth_gates_get(self):
        registry = HotQueryRegistry(capacity=8)
        registry.put(b"fp", _query(8), _items(6))
        registry.put(b"fp", _query(8), _items(3))  # shallower: ignored
        assert registry.stores == 1
        entry = registry.get(b"fp", 6)
        assert entry is not None and len(entry.items) == 6
        assert entry.threshold(6) == 6.0
        # An entry can only certify thresholds it is deep enough for.
        assert registry.get(b"fp", 7) is None


class TestWarmRecurrence:
    def test_recurring_query_on_ties_stays_bit_identical(self):
        # Every trajectory has an exact duplicate: distance ties at
        # every depth, so a seeded threshold that clipped ties at dk
        # (missing the strict nextafter cutoff) would drop items.
        engine = _build_engine(count=40, seed=17, duplicate_every=20)
        queries = engine.dataset.trajectories[:3]

        async def scenario():
            async with engine.serve(max_wait_ms=2.0, max_batch=4,
                                    dispatch="inline") as service:
                runs = []
                for _ in range(3):  # cold, then twice registry-warm
                    futures = [await service.submit(q, k)
                               for q, k in zip(queries, (3, 4, 6))]
                    runs.append(await asyncio.gather(*futures))
                return service, runs

        service, runs = run_virtual(scenario())
        assert service.registry.hits >= len(queries)  # warm runs hit
        assert service.registry.counters()["stores"] >= len(queries)
        for run in runs:
            for query, k, outcome in zip(queries, (3, 4, 6), run):
                assert outcome.result.items == _single(engine, query, k), (
                    "served result diverged from plan='single' on "
                    "tie-heavy data")


class TestSharedGatherPersistence:
    def test_staggered_members_do_not_regather(self):
        # Regression: with wave_size=1 a share-group member lands in a
        # later wave than its representative; the shared gather store
        # must persist across waves so the member adds no leaf
        # gathers of its own.
        def gathers(engine):
            return sum(idx.trie.store.gather_calls
                       for idx in engine.local_indexes())

        options = {"share_eps": float("inf"), "wave_size": 1}
        rep_engine = _build_engine(seed=23, measure="lcss")
        rep = rep_engine.dataset.trajectories[4]
        jitter = Trajectory(rep.points + 1e-7, traj_id=77001)

        alone = rep_engine.top_k_batch([rep], 5, plan="waves",
                                       plan_options=options)
        alone_gathers = gathers(rep_engine)

        full_engine = _build_engine(seed=23, measure="lcss")
        both = full_engine.top_k_batch([rep, jitter], 5, plan="waves",
                                       plan_options=options)
        both_gathers = gathers(full_engine)

        # The member rides the representative's gathers: adding it to
        # the batch must not add leaf gathers.
        assert both_gathers <= alone_gathers
        assert both.results[0].items == alone.results[0].items
        for qi, query in enumerate((rep, jitter)):
            assert (both.results[qi].items
                    == _single(full_engine, query, 5))


class TestVirtualClock:
    def test_sleep_advances_virtual_not_real_time(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.sleep(30.0)
            return loop.time() - start

        began = time.perf_counter()
        elapsed_virtual = run_virtual(scenario())
        elapsed_real = time.perf_counter() - began
        assert elapsed_virtual == pytest.approx(30.0)
        assert elapsed_real < 5.0

    def test_timers_fire_in_deadline_order(self):
        fired: list[str] = []

        async def scenario():
            loop = asyncio.get_running_loop()
            loop.call_later(0.3, fired.append, "late")
            loop.call_later(0.1, fired.append, "early")
            loop.call_later(0.2, fired.append, "middle")
            await asyncio.sleep(0.5)
            return loop.time()

        assert run_virtual(scenario()) == pytest.approx(0.5)
        assert fired == ["early", "middle", "late"]
