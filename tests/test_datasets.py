"""Tests for synthetic generation, preprocessing and CSV I/O."""

import numpy as np
import pytest

from repro.datasets.io import load_csv, save_csv
from repro.datasets.preprocess import preprocess, sample_queries
from repro.datasets.stats import DATASET_SPECS, paper_delta
from repro.datasets.synthetic import TrajectoryGenerator, generate_dataset
from repro.types import Trajectory, TrajectoryDataset


class TestSpecs:
    def test_all_seven_paper_datasets_present(self):
        assert set(DATASET_SPECS) == {"t-drive", "sf", "rome", "porto",
                                      "xian", "chengdu", "osm"}

    def test_table3_statistics(self):
        assert DATASET_SPECS["t-drive"].cardinality == 356_228
        assert DATASET_SPECS["osm"].avg_length == pytest.approx(596.3)
        assert DATASET_SPECS["chengdu"].span == (0.09, 0.07)

    def test_paper_deltas(self):
        # Section VII-A parameter settings.
        assert paper_delta("t-drive", "hausdorff") == 0.15
        assert paper_delta("osm", "frechet") == 1.0
        assert paper_delta("xian", "hausdorff") == 0.01
        assert paper_delta("xian", "frechet") == 0.03
        assert paper_delta("chengdu", "dtw") == 0.02


class TestGenerator:
    def test_deterministic_by_seed(self):
        a = generate_dataset("t-drive", scale=0.0002, seed=5)
        b = generate_dataset("t-drive", scale=0.0002, seed=5)
        assert len(a) == len(b)
        np.testing.assert_array_equal(a.trajectories[3].points,
                                      b.trajectories[3].points)

    def test_different_seeds_differ(self):
        a = generate_dataset("t-drive", scale=0.0002, seed=1)
        b = generate_dataset("t-drive", scale=0.0002, seed=2)
        assert not np.array_equal(a.trajectories[0].points,
                                  b.trajectories[0].points)

    def test_cardinality_scales(self):
        spec = DATASET_SPECS["sf"]
        data = generate_dataset("sf", scale=0.001, seed=0)
        assert len(data) == pytest.approx(spec.cardinality * 0.001, rel=0.05)

    def test_points_within_span(self):
        spec = DATASET_SPECS["rome"]
        data = generate_dataset("rome", scale=0.0005, seed=0)
        box = data.bounding_box()
        assert box.min_x >= 0.0 and box.min_y >= 0.0
        assert box.max_x <= spec.span_x + 1e-9
        assert box.max_y <= spec.span_y + 1e-9

    def test_average_length_roughly_matches_spec(self):
        spec = DATASET_SPECS["xian"]
        data = generate_dataset("xian", scale=0.0001, seed=3)
        assert data.average_length() == pytest.approx(spec.avg_length, rel=0.5)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            generate_dataset("atlantis")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_dataset("sf", scale=0.0)

    def test_spec_override(self):
        data = generate_dataset("sf", scale=0.001, seed=0, hotspots=1)
        assert len(data) > 0

    def test_spatial_skew_present(self):
        """Hot spots concentrate trajectory starts: the densest 10% of
        space holds far more than 10% of the starts."""
        data = generate_dataset("t-drive", scale=0.003, seed=0)
        spec = DATASET_SPECS["t-drive"]
        starts = np.array([t.points[0] for t in data])
        grid_counts, _, _ = np.histogram2d(
            starts[:, 0], starts[:, 1], bins=10,
            range=[[0, spec.span_x], [0, spec.span_y]])
        top_cells = np.sort(grid_counts.ravel())[::-1][:10]
        assert top_cells.sum() > 0.3 * len(starts)


class TestPreprocess:
    def test_drops_short_trajectories(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)] * 5))
        ds.add(Trajectory([(0.0, 0.0)] * 15))
        out = preprocess(ds, min_length=10)
        assert len(out) == 1
        assert len(out.trajectories[0]) == 15

    def test_splits_long_trajectories(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory(np.random.default_rng(0).uniform(0, 1, (2500, 2))))
        out = preprocess(ds, min_length=10, max_length=1000)
        assert len(out) == 3
        assert sum(len(t) for t in out) == 2500
        assert all(len(t) <= 1000 + 10 for t in out)

    def test_merges_undersized_tail(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory(np.random.default_rng(0).uniform(0, 1, (1005, 2))))
        out = preprocess(ds, min_length=10, max_length=1000)
        assert len(out) == 1
        assert len(out.trajectories[0]) == 1005

    def test_ids_dense_after_preprocess(self):
        ds = TrajectoryDataset()
        for _ in range(3):
            ds.add(Trajectory([(0.0, 0.0)] * 20))
        out = preprocess(ds)
        assert out.ids() == [0, 1, 2]


class TestSampleQueries:
    def test_count_and_membership(self, small_dataset):
        queries = sample_queries(small_dataset, count=10, seed=1)
        assert len(queries) == 10
        ids = set(small_dataset.ids())
        assert all(q.traj_id in ids for q in queries)

    def test_no_duplicates(self, small_dataset):
        queries = sample_queries(small_dataset, count=20, seed=2)
        assert len({q.traj_id for q in queries}) == 20

    def test_caps_at_dataset_size(self, small_dataset):
        queries = sample_queries(small_dataset, count=10_000)
        assert len(queries) == len(small_dataset)


class TestCsvIO:
    def test_roundtrip(self, tmp_path, small_dataset):
        path = tmp_path / "data.csv"
        save_csv(small_dataset, path)
        loaded = load_csv(path)
        assert len(loaded) == len(small_dataset)
        for original, restored in zip(small_dataset, loaded):
            assert original.traj_id == restored.traj_id
            np.testing.assert_allclose(original.points, restored.points)

    def test_load_names_dataset_after_file(self, tmp_path, small_dataset):
        path = tmp_path / "porto_sample.csv"
        save_csv(small_dataset, path)
        assert load_csv(path).name == "porto_sample"
