"""Tests for the rank/select bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector


class TestBasics:
    def test_empty(self):
        bv = BitVector(0)
        assert len(bv) == 0
        assert bv.num_ones == 0
        assert list(bv.iter_ones()) == []

    def test_all_zeros(self):
        bv = BitVector(100)
        assert bv.num_ones == 0
        assert bv.rank1(100) == 0
        assert not bv[50]

    def test_set_positions(self):
        bv = BitVector(10, [0, 3, 9])
        assert [bv[i] for i in range(10)] == [
            True, False, False, True, False,
            False, False, False, False, True]

    def test_out_of_range_position_rejected(self):
        with pytest.raises(IndexError):
            BitVector(4, [4])
        with pytest.raises(IndexError):
            BitVector(4, [-1])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_getitem_bounds(self):
        bv = BitVector(8, [1])
        with pytest.raises(IndexError):
            bv[8]
        with pytest.raises(IndexError):
            bv[-1]


class TestRank:
    def test_rank_examples(self):
        bv = BitVector(10, [0, 3, 9])
        assert bv.rank1(0) == 0
        assert bv.rank1(1) == 1
        assert bv.rank1(4) == 2
        assert bv.rank1(9) == 2
        assert bv.rank1(10) == 3

    def test_rank_across_word_boundaries(self):
        positions = [0, 63, 64, 65, 127, 128, 200]
        bv = BitVector(256, positions)
        for p in range(257):
            expected = sum(1 for q in positions if q < p)
            assert bv.rank1(p) == expected

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(4).rank1(5)


class TestSelect:
    def test_select_examples(self):
        bv = BitVector(10, [0, 3, 9])
        assert bv.select1(0) == 0
        assert bv.select1(1) == 3
        assert bv.select1(2) == 9

    def test_select_inverse_of_rank(self):
        rng = np.random.default_rng(0)
        positions = sorted(set(rng.integers(0, 1000, 80).tolist()))
        bv = BitVector(1000, positions)
        for k, p in enumerate(positions):
            assert bv.select1(k) == p
            assert bv.rank1(p) == k

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(10, [1]).select1(1)


class TestIterOnes:
    def test_full_range(self):
        positions = [2, 5, 64, 100]
        bv = BitVector(128, positions)
        assert list(bv.iter_ones()) == positions

    def test_windowed(self):
        bv = BitVector(128, [2, 5, 64, 100])
        assert list(bv.iter_ones(3, 65)) == [5, 64]
        assert list(bv.iter_ones(65, 128)) == [100]

    def test_bad_range(self):
        with pytest.raises(IndexError):
            list(BitVector(8).iter_ones(5, 3))


@given(st.sets(st.integers(0, 499), max_size=60))
@settings(max_examples=50)
def test_property_rank_select_consistency(positions):
    ordered = sorted(positions)
    bv = BitVector(500, ordered)
    assert bv.num_ones == len(ordered)
    assert list(bv.iter_ones()) == ordered
    for k, p in enumerate(ordered):
        assert bv.select1(k) == p
        assert bv.rank1(p + 1) == k + 1
