"""Tests for the LS, DFT and DITA baselines.

Every baseline must return exactly the brute-force top-k distances on
the measures it supports, and refuse the measures it does not (the
paper's compatibility matrix).
"""

import numpy as np
import pytest

from repro.baselines.dft import DFTIndex
from repro.baselines.dita import DITAIndex, _select_pivots
from repro.baselines.linear import LinearScanIndex
from repro.distances import get_measure
from repro.exceptions import IndexNotBuiltError, UnsupportedMeasureError
from repro.types import Trajectory


def brute_force(measure, query, trajectories, k):
    return sorted((measure.distance(query, t), t.traj_id)
                  for t in trajectories)[:k]


def assert_distances_match(result, expected):
    got = [round(d, 9) for d in result.distances()]
    want = [round(d, 9) for d, _ in expected]
    assert got == want


class TestLinearScan:
    @pytest.mark.parametrize("name", ["hausdorff", "frechet", "dtw",
                                      "lcss", "edr", "erp"])
    def test_exact_on_all_measures(self, small_trajectories, name):
        measure = (get_measure(name, eps=0.4) if name in ("lcss", "edr")
                   else get_measure(name))
        index = LinearScanIndex(measure).build(small_trajectories)
        query = small_trajectories[4]
        result = index.top_k(query, 10)
        assert_distances_match(result,
                               brute_force(measure, query,
                                           small_trajectories, 10))

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            LinearScanIndex("hausdorff").top_k(
                Trajectory([(0.0, 0.0)], traj_id=0), 1)

    def test_distance_computations_equal_dataset_size(self,
                                                      small_trajectories):
        index = LinearScanIndex("hausdorff").build(small_trajectories)
        result = index.top_k(small_trajectories[0], 5)
        assert result.stats.distance_computations == len(small_trajectories)


class TestDFT:
    @pytest.mark.parametrize("name", ["hausdorff", "frechet", "dtw"])
    def test_exact_on_supported_measures(self, small_trajectories, name):
        measure = get_measure(name)
        index = DFTIndex(measure).build(small_trajectories)
        query = small_trajectories[9]
        result = index.top_k(query, 10)
        assert_distances_match(result,
                               brute_force(measure, query,
                                           small_trajectories, 10))

    @pytest.mark.parametrize("name", ["lcss", "edr", "erp"])
    def test_unsupported_measures_rejected(self, name):
        with pytest.raises(UnsupportedMeasureError):
            DFTIndex(get_measure(name))

    def test_k_exceeds_dataset(self, small_trajectories):
        index = DFTIndex("hausdorff").build(small_trajectories[:5])
        assert len(index.top_k(small_trajectories[0], 50).items) == 5

    def test_threshold_sampling_prunes(self, small_trajectories):
        """DFT should refine fewer trajectories than LS on clustered data."""
        index = DFTIndex("hausdorff").build(small_trajectories)
        ls = LinearScanIndex("hausdorff").build(small_trajectories)
        query = small_trajectories[0]
        dft_comps = index.top_k(query, 3).stats.distance_computations
        ls_comps = ls.top_k(query, 3).stats.distance_computations
        # Sampling C*k=15 + refinement should stay below 2x LS worst case.
        assert dft_comps <= 2 * ls_comps

    def test_memory_includes_dual_index(self, small_trajectories):
        index = DFTIndex("hausdorff").build(small_trajectories)
        assert index.memory_bytes() > 0

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            DFTIndex("hausdorff").top_k(Trajectory([(0, 0)], traj_id=0), 1)

    def test_deterministic_given_seed(self, small_trajectories):
        a = DFTIndex("hausdorff", seed=3).build(small_trajectories)
        b = DFTIndex("hausdorff", seed=3).build(small_trajectories)
        q = small_trajectories[1]
        assert a.top_k(q, 5).items == b.top_k(q, 5).items


class TestDITA:
    @pytest.mark.parametrize("name", ["frechet", "dtw"])
    def test_exact_on_supported_measures(self, small_trajectories, name):
        measure = get_measure(name)
        index = DITAIndex(measure).build(small_trajectories)
        query = small_trajectories[13]
        result = index.top_k(query, 10)
        assert_distances_match(result,
                               brute_force(measure, query,
                                           small_trajectories, 10))

    def test_hausdorff_rejected(self):
        """As in the paper: DITA does not support Hausdorff."""
        with pytest.raises(UnsupportedMeasureError):
            DITAIndex(get_measure("hausdorff"))

    def test_k_exceeds_dataset(self, small_trajectories):
        index = DITAIndex("frechet").build(small_trajectories[:4])
        assert len(index.top_k(small_trajectories[0], 50).items) == 4

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            DITAIndex("frechet").top_k(Trajectory([(0, 0)], traj_id=0), 1)

    def test_invalid_pivot_count(self):
        with pytest.raises(ValueError):
            DITAIndex("frechet", pivot_count=1)

    def test_memory_positive(self, small_trajectories):
        index = DITAIndex("frechet").build(small_trajectories)
        assert index.memory_bytes() > 0


class TestDITAPivotSelection:
    def test_keeps_endpoints(self):
        points = np.array([(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (6.0, 0.0)])
        pivots = _select_pivots(Trajectory(points, traj_id=0), 4)
        assert tuple(pivots[0]) == (0.0, 0.0)
        assert tuple(pivots[-1]) == (6.0, 0.0)

    def test_pads_short_trajectories(self):
        points = np.array([(0.0, 0.0), (1.0, 1.0)])
        pivots = _select_pivots(Trajectory(points, traj_id=0), 4)
        assert pivots.shape == (4, 2)
        assert tuple(pivots[-1]) == (1.0, 1.0)

    def test_inner_pivot_prefers_sharp_detour(self):
        # The spike at index 2 has the largest neighbour distances.
        points = np.array([(0.0, 0.0), (1.0, 0.0), (2.0, 9.0),
                           (3.0, 0.0), (4.0, 0.0), (5.0, 0.0)])
        pivots = _select_pivots(Trajectory(points, traj_id=0), 3)
        assert tuple(pivots[1]) == (2.0, 9.0)

    def test_fixed_length_representation(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 10, 50):
            traj = Trajectory(rng.uniform(0, 1, (n, 2)), traj_id=0)
            assert _select_pivots(traj, 4).shape == (4, 2)
