"""Regression pins for the banded-DTW ``_DTW_BOUND_SLACK`` contract.

The sampled cross-query bound inflates the banded DTW value by a
relative ``_DTW_BOUND_SLACK`` because the band-restricted DP — an
upper bound in real arithmetic — can land a few float ulps *below*
the exact DP when the band covers the optimal warp path (the same
path costs are summed in a different association order).  These tests
regenerate concrete point pairs where that inversion actually occurs
(harvested by seed search over ``default_rng(seed)`` pairs) and pin
both halves of the contract: the raw banded float value really does
round below the exact DP, and the inflated bound — served through the
planner's :class:`~repro.cluster.query_index.IncrementalSampledBounds`
path — still admits the true k-th candidate under the strict
``nextafter`` result-heap cutoff.
"""

import functools

import numpy as np
import pytest

from repro.cluster.batch import BatchQueryPlanner
from repro.cluster.engine import ExecutionEngine
from repro.core.search import PartitionProbe, TopKResult
from repro.distances import dtw_distance, get_measure
from repro.distances.batch import SAMPLED_BOUND_BAND, banded_upper_bound
from repro.distances.dtw import dtw_banded_distance
from repro.types import Trajectory

#: Seeds whose ``default_rng`` pair exhibits ``banded < exact`` in
#: float64 (found by exhaustive search; the generation recipe below is
#: part of the pin — do not change it without re-harvesting).  Seed 106
#: is the sharpest: a 2-ulp inversion, enough to slip *below* even the
#: ``nextafter`` admission cushion.
INVERTED_SEEDS = [9, 106]
SHARP_SEED = 106


def _harvested_pair(seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 10))
    m = n + int(rng.integers(0, SAMPLED_BOUND_BAND))
    a = rng.uniform(0, 10, (n, 2))
    b = rng.uniform(0, 10, (m, 2))
    return a, b


@pytest.mark.parametrize("seed", INVERTED_SEEDS)
def test_banded_dtw_float_value_rounds_below_exact_dp(seed):
    """The inversion the slack exists for is real: on these pairs the
    banded DP's float value is strictly below the exact DP's."""
    a, b = _harvested_pair(seed)
    exact = float(dtw_distance(a, b))
    banded = float(dtw_banded_distance(a, b, SAMPLED_BOUND_BAND))
    assert banded < exact, (
        f"seed {seed} no longer reproduces the ulp inversion — the "
        f"banded kernel changed; re-harvest the seeds")
    # The inflated bound restores the float-level upper-bound contract.
    inflated = banded_upper_bound(get_measure("dtw"), a, b)
    assert inflated >= exact


def test_sharp_seed_would_defeat_the_nextafter_cushion():
    """Seed 106's gap is 2 ulps: without the slack, even the result
    heap's ``nextafter`` admission cushion strictly excludes a
    candidate sitting exactly at the true distance."""
    a, b = _harvested_pair(SHARP_SEED)
    exact = float(dtw_distance(a, b))
    banded = float(dtw_banded_distance(a, b, SAMPLED_BOUND_BAND))
    assert float(np.nextafter(banded, np.inf)) < exact


class _ScriptedIndex:
    """Planner-facing fake honoring the real local-search admission:
    an item survives a broadcast threshold ``dk`` iff its distance is
    at most ``nextafter(dk, inf)`` (search.py's strict-cutoff heap)."""

    supports_threshold = True

    def __init__(self, bound, items_for):
        self.bound = bound
        self.items_for = items_for
        self.seen_dks: list[float] = []

    def probe(self, query, dqp=None):
        return PartitionProbe(bound=self.bound,
                              child_bounds=(self.bound,), trajectories=1)

    def top_k(self, query, k, dk=float("inf"), **kwargs):
        self.seen_dks.append(dk)
        cutoff = float(np.nextafter(dk, np.inf))
        items = self.items_for(query)
        return TopKResult(items=[item for item in items
                                 if item[0] <= cutoff][:k])


class _ScriptedPart:
    def __init__(self, index, trajectories=()):
        self.index = index
        self.trajectories = list(trajectories)


def _run_seed_106_batch() -> tuple[list, object, float]:
    """One two-wave scripted batch where query ``a``'s true nearest is
    only reachable through the sampled-bound threshold.

    Query ``b`` (a duplicate of indexed trajectory 0) resolves in wave
    one, seeding the shared candidate sample with trajectory 0; query
    ``a`` finds nothing in wave one, so its wave-two threshold is
    exactly the banded bound ``a -> trajectory 0`` served through
    :class:`IncrementalSampledBounds`.  Trajectory 0 sits at exactly
    the true DTW distance in wave two's partition: whether it survives
    is decided by the slack alone.
    """
    a, b = _harvested_pair(SHARP_SEED)
    exact = float(dtw_distance(a, b))
    query_b = Trajectory(b, traj_id=900)
    query_a = Trajectory(a, traj_id=901)
    key_b = query_b.points.tobytes()

    def first_part_items(query):
        if query.points.tobytes() == key_b:
            return [(0.0, 0)]
        return []

    def second_part_items(query):
        if query.points.tobytes() == key_b:
            return []
        return [(exact, 0)]

    parts = [
        _ScriptedPart(_ScriptedIndex(0.0, first_part_items)),
        _ScriptedPart(_ScriptedIndex(5.0, second_part_items),
                      trajectories=[Trajectory(b, traj_id=0)]),
    ]
    planner = BatchQueryPlanner(
        ExecutionEngine(), wave_size=1, sample_size=4,
        sampled_bound=functools.partial(banded_upper_bound,
                                        get_measure("dtw")))

    def make_task(rp, queries, kwargs_list, shares=None):
        return lambda: [rp.index.top_k(query, 1, **kwargs)
                        for query, kwargs in zip(queries, kwargs_list)]

    results, _, report = planner.execute_batch(
        parts, [query_b, query_a], 1, [{}, {}], make_task=make_task)
    return results, report, exact


def test_slack_admits_true_kth_through_index_served_bound_path():
    """With the slack in force the sampled bound stays a sound float
    upper bound, so the true nearest neighbour survives the threshold
    it produced — bit-identically to an unthresholded search."""
    results, report, exact = _run_seed_106_batch()
    assert results[0].items == [(0.0, 0)]
    assert results[1].items == [(exact, 0)]
    # The bound really was served through the incremental cache.
    assert report.sampled_bound_calls > 0


def test_without_slack_the_crafted_case_loses_the_true_kth(monkeypatch):
    """Teeth check: zeroing the slack on the same scripted batch makes
    the banded threshold strictly exclude the true nearest — the exact
    failure `_DTW_BOUND_SLACK` exists to prevent."""
    import repro.distances.batch as distances_batch
    monkeypatch.setattr(distances_batch, "_DTW_BOUND_SLACK", 0.0)
    results, _, exact = _run_seed_106_batch()
    assert results[0].items == [(0.0, 0)]
    assert results[1].items == []
