"""Tests for index save/load round-trips."""

import numpy as np
import pytest

from repro.core.rptrie import RPTrie
from repro.core.search import local_search
from repro.distances import get_measure
from repro.persistence import load_index, save_index
from repro.types import Trajectory


@pytest.mark.parametrize("name,params", [("hausdorff", {}),
                                         ("frechet", {}),
                                         ("dtw", {}),
                                         ("lcss", {"eps": 0.4}),
                                         ("erp", {})])
def test_roundtrip_preserves_search_results(tmp_path, small_grid,
                                            small_trajectories, name, params):
    measure = get_measure(name, **params)
    trie = RPTrie(small_grid, measure, num_pivots=3,
                  pivot_groups=3).build(small_trajectories)
    path = tmp_path / "index.npz"
    save_index(trie, path)
    restored = load_index(path)

    query = small_trajectories[4]
    original = local_search(trie, query, 10)
    reloaded = local_search(restored, query, 10)
    assert [round(d, 12) for d in original.distances()] == \
        [round(d, 12) for d in reloaded.distances()]
    # Ids must agree except where distances tie at the k-th value
    # (tie-breaking among equal distances is traversal-order dependent).
    kth = original.distances()[-1]
    original_strict = {tid for d, tid in original.items if d < kth}
    reloaded_strict = {tid for d, tid in reloaded.items if d < kth}
    assert original_strict == reloaded_strict


def test_roundtrip_preserves_structure(tmp_path, small_grid,
                                       small_trajectories):
    trie = RPTrie(small_grid, "hausdorff", num_pivots=2,
                  pivot_groups=2).build(small_trajectories)
    path = tmp_path / "index.npz"
    save_index(trie, path)
    restored = load_index(path)
    assert restored.node_count == trie.node_count
    assert restored.num_trajectories == trie.num_trajectories
    assert restored.grid == trie.grid
    assert [p.traj_id for p in restored.pivots] == \
        [p.traj_id for p in trie.pivots]
    assert restored.measure.name == "hausdorff"


def test_roundtrip_optimized_trie(tmp_path, small_grid, small_trajectories):
    trie = RPTrie(small_grid, "hausdorff",
                  optimized=True).build(small_trajectories)
    path = tmp_path / "index.npz"
    save_index(trie, path)
    restored = load_index(path)
    assert restored.optimized
    assert restored.node_count == trie.node_count


def test_loaded_index_supports_insert(tmp_path, small_grid,
                                      small_trajectories):
    trie = RPTrie(small_grid, "hausdorff", num_pivots=2,
                  pivot_groups=2).build(small_trajectories)
    path = tmp_path / "index.npz"
    save_index(trie, path)
    restored = load_index(path)
    rng = np.random.default_rng(3)
    new = Trajectory(rng.uniform(0.2, 7.8, (6, 2)), traj_id=888)
    restored.insert(new)
    assert local_search(restored, new, 1).ids() == [888]


def test_unbuilt_index_rejected(tmp_path, small_grid):
    with pytest.raises(Exception):
        save_index(RPTrie(small_grid, "hausdorff"), tmp_path / "x.npz")


def test_empty_index_roundtrip(tmp_path, small_grid):
    trie = RPTrie(small_grid, "hausdorff").build([])
    path = tmp_path / "empty.npz"
    save_index(trie, path)
    restored = load_index(path)
    assert restored.num_trajectories == 0
    query = Trajectory([(1.0, 1.0)], traj_id=0)
    assert local_search(restored, query, 3).items == []


def test_erp_gap_parameter_roundtrip(tmp_path, small_grid,
                                     small_trajectories):
    measure = get_measure("erp", gap=(4.0, 4.0))
    trie = RPTrie(small_grid, measure, num_pivots=2,
                  pivot_groups=2).build(small_trajectories)
    path = tmp_path / "erp.npz"
    save_index(trie, path)
    restored = load_index(path)
    assert restored.measure.params["gap"] == (4.0, 4.0)
