"""The paper's parameter settings (Section VII-A) are the library
defaults, so an out-of-the-box run matches the published configuration."""

from repro.baselines.dft import DFTIndex
from repro.baselines.dita import DITAIndex
from repro.cluster.scheduler import ClusterSpec
from repro.core.rptrie import RPTrie
from repro.core.grid import Grid


class TestPaperDefaults:
    def test_repose_np_is_5(self):
        """'We choose Np = 5 pivot trajectories.'"""
        trie = RPTrie(Grid(0, 0, 1.0, 8), "hausdorff")
        assert trie.num_pivots == 5

    def test_dft_c_is_5(self):
        """'For DFT, we set the partition pruning parameter C = 5.'"""
        assert DFTIndex("hausdorff").threshold_multiplier == 5

    def test_dita_nl_32_and_4_pivots(self):
        """'For DITA, we set NL = 32 and the pivot size is set to 4.'"""
        index = DITAIndex("frechet")
        assert index.grid_resolution == 32
        assert index.pivot_count == 4

    def test_cluster_is_16_workers_4_cores(self):
        """'1 master node and 16 worker nodes ... 4-core' -> 64 cores,
        64 partitions by default (one per core)."""
        spec = ClusterSpec()
        assert spec.num_workers == 16
        assert spec.cores_per_worker == 4
        assert spec.total_cores == 64

    def test_default_partitions_64(self):
        """'we set the default number of partitions to 64.'"""
        import inspect

        from repro.repose import DistributedTopK
        signature = inspect.signature(DistributedTopK.__init__)
        assert signature.parameters["num_partitions"].default == 64

    def test_default_k_100_in_paper_vs_bench(self):
        """The paper queries k=100; the bench default scales k with the
        reduced cardinality but remains overridable to 100."""
        import os
        from repro.bench import BenchConfig
        os.environ["REPRO_BENCH_K"] = "100"
        try:
            assert BenchConfig.from_env().k == 100
        finally:
            del os.environ["REPRO_BENCH_K"]

    def test_preprocessing_bounds(self):
        """'remove trajectories with length smaller than 10 ... split
        larger than 1,000.'"""
        import inspect

        from repro.datasets.preprocess import preprocess
        signature = inspect.signature(preprocess)
        assert signature.parameters["min_length"].default == 10
        assert signature.parameters["max_length"].default == 1000
