"""The documentation suite stays present and lint-clean.

Mirrors the CI "Documentation check" step inside tier-1, so docstring
coverage on the documented hot modules and the README/docs link graph
cannot rot between CI configurations.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    assert (REPO / "README.md").exists()
    assert (REPO / "docs" / "architecture.md").exists()


def test_readme_has_quickstart_code():
    text = (REPO / "README.md").read_text()
    assert "```python" in text
    assert "Repose.build(" in text


def test_docs_lint_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
