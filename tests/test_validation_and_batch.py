"""Tests for the validation harness and batch scheduling."""

import numpy as np
import pytest

from repro.cluster.scheduler import ClusterSpec
from repro.repose import Repose
from repro.validation import validate_dataset


class TestValidation:
    @pytest.mark.parametrize("measure", ["hausdorff", "frechet", "dtw"])
    def test_all_engines_agree(self, small_dataset, measure):
        report = validate_dataset(small_dataset, measure=measure, k=6,
                                  num_queries=2, num_partitions=4, delta=0.5)
        report.raise_on_mismatch()
        assert report.agreed
        assert report.queries_checked == 2

    def test_engine_roster_respects_support(self, small_dataset):
        report = validate_dataset(small_dataset, measure="hausdorff", k=3,
                                  num_queries=1, num_partitions=4, delta=0.5)
        assert "dita" not in report.engines  # no Hausdorff in DITA
        assert "dft" in report.engines
        report_f = validate_dataset(small_dataset, measure="frechet", k=3,
                                    num_queries=1, num_partitions=4,
                                    delta=0.5)
        assert "dita" in report_f.engines

    def test_mismatch_raises(self):
        from repro.validation import ValidationReport
        report = ValidationReport(measure="x", engines=[], queries_checked=1,
                                  agreed=False, mismatches=["query 0: a != b"])
        with pytest.raises(AssertionError):
            report.raise_on_mismatch()


class TestBatchScheduling:
    def test_batch_results_match_individual(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4)
        queries = small_dataset.trajectories[:3]
        batch = engine.top_k_batch_scheduled(queries, k=5)
        assert len(batch.results) == 3
        for query, batched in zip(queries, batch.results):
            single = engine.top_k(query, 5).result
            assert [round(d, 9) for d in batched.distances()] == \
                [round(d, 9) for d in single.distances()]

    def test_batch_makespan_at_least_single_query(self, small_dataset):
        """A batch schedule contains each query's tasks, so its
        makespan cannot beat the longest single task."""
        spec = ClusterSpec(2, 2)
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4, cluster_spec=spec)
        queries = small_dataset.trajectories[:4]
        batch = engine.top_k_batch_scheduled(queries, k=5)
        assert batch.simulated_seconds > 0
        assert 0.0 < batch.utilization <= 1.0

    def test_batch_schedules_all_tasks(self, small_dataset):
        """Each batch schedules queries x partitions tasks; total busy
        time across cores equals the schedule's total work."""
        spec = ClusterSpec(1, 2)
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4, cluster_spec=spec)
        batch = engine.top_k_batch_scheduled(
            small_dataset.trajectories[:8], k=5)
        assert len(batch.results) == 8
        schedule = batch.schedule
        assert schedule is not None
        assert sum(schedule.core_busy) == pytest.approx(schedule.total_work)
        # Two cores: the makespan is at least half the total work.
        assert batch.simulated_seconds >= schedule.total_work / 2 - 1e-9
