"""Tests for range search (local and distributed) and incremental insert."""

import numpy as np
import pytest

from repro.core.rptrie import RPTrie
from repro.core.search import local_range_search, local_search
from repro.distances import get_measure
from repro.repose import Repose
from repro.types import Trajectory

MEASURES = {
    "hausdorff": get_measure("hausdorff"),
    "frechet": get_measure("frechet"),
    "dtw": get_measure("dtw"),
    "erp": get_measure("erp"),
}


def brute_range(measure, query, trajectories, radius):
    return sorted((d, t.traj_id) for t in trajectories
                  if (d := measure.distance(query, t)) <= radius)


@pytest.mark.parametrize("name", list(MEASURES))
class TestLocalRangeSearch:
    def test_matches_brute_force(self, small_grid, small_trajectories, name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[5]
        # Radius chosen from data so the result is non-trivial.
        distances = sorted(measure.distance(query, t)
                           for t in small_trajectories)
        radius = distances[len(distances) // 3]
        result = local_range_search(trie, query, radius)
        expected = brute_range(measure, query, small_trajectories, radius)
        assert [round(d, 9) for d in result.distances()] == \
            [round(d, 9) for d, _ in expected]
        assert result.ids() == [tid for _, tid in expected]

    def test_zero_radius_finds_self(self, small_grid, small_trajectories,
                                    name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[2]
        result = local_range_search(trie, query, 0.0)
        assert query.traj_id in result.ids()

    def test_huge_radius_returns_everything(self, small_grid,
                                            small_trajectories, name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        result = local_range_search(trie, small_trajectories[0], 1e9)
        assert len(result) == len(small_trajectories)


class TestBoundaryInclusion:
    def test_distance_equal_to_radius_included(self, small_grid,
                                               small_trajectories):
        measure = MEASURES["hausdorff"]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[0]
        exact = measure.distance(query, small_trajectories[1])
        result = local_range_search(trie, query, exact)
        assert small_trajectories[1].traj_id in result.ids()


class TestDistributedRange:
    def test_matches_brute_force(self, small_dataset):
        measure = MEASURES["hausdorff"]
        engine = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4)
        query = small_dataset.trajectories[3]
        distances = sorted(measure.distance(query, t) for t in small_dataset)
        radius = distances[len(distances) // 2]
        outcome = engine.range_query(query, radius)
        expected = brute_range(measure, query,
                               small_dataset.trajectories, radius)
        assert [round(d, 9) for d in outcome.result.distances()] == \
            [round(d, 9) for d, _ in expected]


class TestIncrementalInsert:
    def test_inserted_trajectory_found(self, small_grid, small_trajectories):
        measure = MEASURES["hausdorff"]
        trie = RPTrie(small_grid, measure, num_pivots=3,
                      pivot_groups=3).build(small_trajectories)
        rng = np.random.default_rng(5)
        new = Trajectory(rng.uniform(0.1, 7.9, (8, 2)), traj_id=999)
        trie.insert(new)
        result = local_search(trie, new, 1)
        assert result.ids() == [999]
        assert result.distances()[0] == pytest.approx(0.0, abs=1e-12)

    def test_search_stays_exact_after_inserts(self, small_grid,
                                              small_trajectories):
        measure = MEASURES["frechet"]
        initial = small_trajectories[:40]
        trie = RPTrie(small_grid, measure, num_pivots=2,
                      pivot_groups=2).build(initial)
        added = []
        rng = np.random.default_rng(6)
        for i in range(10):
            traj = Trajectory(rng.uniform(0.1, 7.9, (6, 2)),
                              traj_id=1000 + i)
            trie.insert(traj)
            added.append(traj)
        everything = initial + added
        query = added[3]
        result = local_search(trie, query, 8)
        expected = sorted(measure.distance(query, t)
                          for t in everything)[:8]
        assert [round(d, 9) for d in result.distances()] == \
            [round(d, 9) for d in expected]

    def test_duplicate_id_rejected(self, small_grid, small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        with pytest.raises(ValueError):
            trie.insert(small_trajectories[0])

    def test_node_count_updated(self, small_grid, small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        before = trie.node_count
        rng = np.random.default_rng(7)
        trie.insert(Trajectory(rng.uniform(0.1, 7.9, (12, 2)), traj_id=500))
        assert trie.node_count >= before
        stored = [tid for leaf in trie.iter_leaves() for tid in leaf.tids]
        assert 500 in stored
