"""Tests for the SuRF-style succinct frozen trie."""

import pytest

from repro.core.node import TERMINAL
from repro.core.rptrie import RPTrie
from repro.core.succinct import SuccinctRPTrie
from repro.exceptions import IndexNotBuiltError


@pytest.fixture
def built_trie(small_grid, small_trajectories):
    return RPTrie(small_grid, "hausdorff", num_pivots=3,
                  pivot_groups=3).build(small_trajectories)


class TestFreeze:
    def test_requires_built_source(self, small_grid):
        with pytest.raises(IndexNotBuiltError):
            SuccinctRPTrie(RPTrie(small_grid, "hausdorff"))

    def test_node_count_matches_source(self, built_trie):
        frozen = SuccinctRPTrie(built_trie)
        assert frozen.node_count == built_trie.node_count

    def test_same_trajectories(self, built_trie):
        frozen = SuccinctRPTrie(built_trie)
        assert frozen.num_trajectories == built_trie.num_trajectories
        some_id = built_trie.trajectories()[0].traj_id
        assert frozen.trajectory(some_id) == built_trie.trajectory(some_id)

    def test_structure_identical(self, built_trie):
        """DFS through both tries yields identical label structure,
        payloads, HR arrays and max_traj_len."""
        import numpy as np

        def walk(dyn_node, frz_node):
            dyn_children = {c.z_value: c for c in dyn_node.iter_children()}
            frz_children = {c.z_value: c for c in frz_node.iter_children()}
            assert dyn_children.keys() == frz_children.keys()
            for z, dyn_child in dyn_children.items():
                frz_child = frz_children[z]
                assert dyn_child.is_leaf == frz_child.is_leaf
                if dyn_child.is_leaf:
                    assert sorted(dyn_child.tids) == sorted(frz_child.tids)
                    assert dyn_child.dmax == pytest.approx(frz_child.dmax)
                else:
                    assert dyn_child.max_traj_len == frz_child.max_traj_len
                if dyn_child.hr_min is not None:
                    np.testing.assert_allclose(frz_child.hr_min,
                                               dyn_child.hr_min)
                    np.testing.assert_allclose(frz_child.hr_max,
                                               dyn_child.hr_max)
                if not dyn_child.is_leaf:
                    walk(dyn_child, frz_child)

        frozen = SuccinctRPTrie(built_trie)
        walk(built_trie.root, frozen.root)

    def test_bitmap_level_encoding_used(self, built_trie):
        frozen = SuccinctRPTrie(built_trie, bitmap_levels=2)
        assert len(frozen._bc) > 0
        assert len(frozen._byte_children) > 0

    def test_all_byte_encoding(self, built_trie):
        frozen = SuccinctRPTrie(built_trie, bitmap_levels=0)
        assert len(frozen._bc) == 0

    def test_find_child_bitmap_and_bytes(self, built_trie):
        for levels in (0, 3):
            frozen = SuccinctRPTrie(built_trie, bitmap_levels=levels)
            root = frozen.root
            for child in root.iter_children():
                if child.is_leaf:
                    continue
                found = frozen.find_child(root.index, child.z_value)
                assert found is not None
                assert found.index == child.index
            assert frozen.find_child(root.index, 10**9) is None

    def test_memory_smaller_than_dict_trie(self, built_trie):
        frozen = SuccinctRPTrie(built_trie)
        assert 0 < frozen.memory_bytes() < built_trie.memory_bytes()

    def test_bl_bitmap_marks_prefix_ends(self, small_grid):
        """Bl must flag children that terminate a reference trajectory."""
        from repro.types import Trajectory
        long = Trajectory([(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)], traj_id=0)
        prefix = Trajectory([(0.5, 0.5), (1.5, 0.5)], traj_id=1)
        trie = RPTrie(small_grid, "frechet").build([long, prefix])
        frozen = SuccinctRPTrie(trie, bitmap_levels=4)
        # Walk to depth 2 (where `prefix` ends): its node must be marked
        # in its parent's Bl; the deeper `long` node at depth 3 must not.
        level1 = next(c for c in frozen.root.iter_children() if not c.is_leaf)
        level2 = next(c for c in level1.iter_children() if not c.is_leaf)
        assert frozen.has_terminal(level1.index, level2.z_value) is True
        level3 = next(c for c in level2.iter_children() if not c.is_leaf)
        assert frozen.has_terminal(level2.index, level3.z_value) is True

    def test_rank_navigation_matches_first_child(self, built_trie):
        """Bitmap-level rank navigation and BFS contiguity agree."""
        frozen = SuccinctRPTrie(built_trie, bitmap_levels=3)
        for child in frozen.root.iter_children():
            if child.is_leaf:
                continue
            via_rank = frozen.find_child(frozen.root.index, child.z_value)
            assert via_rank is not None
            assert via_rank.index == child.index
