"""Tests for the distributed REPOSE framework and baseline harness."""

import numpy as np
import pytest

from repro.baselines.linear import LinearScanIndex
from repro.cluster.scheduler import ClusterSpec
from repro.distances import get_measure
from repro.exceptions import IndexNotBuiltError
from repro.repose import (
    DistributedTopK,
    Repose,
    RPTrieLocalIndex,
    make_baseline,
)
from repro.types import Trajectory


def brute_force(measure, query, dataset, k):
    return sorted((measure.distance(query, t), t.traj_id) for t in dataset)[:k]


class TestReposeBuild:
    def test_build_returns_ready_engine(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff",
                              delta=0.5, num_partitions=4)
        assert engine.build_report is not None
        assert engine.build_report.index_bytes > 0
        assert len(engine.build_report.partition_sizes) == 4

    def test_distributed_equals_brute_force(self, small_dataset):
        measure = get_measure("hausdorff")
        engine = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4)
        query = small_dataset.trajectories[6]
        outcome = engine.top_k(query, 10)
        expected = brute_force(measure, query, small_dataset, 10)
        got = [round(d, 9) for d in outcome.result.distances()]
        assert got == [round(d, 9) for d, _ in expected]

    @pytest.mark.parametrize("strategy", ["heterogeneous", "homogeneous",
                                          "random"])
    def test_any_strategy_is_exact(self, small_dataset, strategy):
        measure = get_measure("frechet")
        engine = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4, strategy=strategy)
        query = small_dataset.trajectories[2]
        expected = brute_force(measure, query, small_dataset, 5)
        got = engine.top_k(query, 5).result.distances()
        assert [round(d, 9) for d in got] == [round(d, 9) for d, _ in expected]

    def test_succinct_mode_is_exact(self, small_dataset):
        measure = get_measure("hausdorff")
        engine = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4, succinct=True)
        query = small_dataset.trajectories[0]
        expected = brute_force(measure, query, small_dataset, 5)
        got = engine.top_k(query, 5).result.distances()
        assert [round(d, 9) for d in got] == [round(d, 9) for d, _ in expected]

    def test_default_delta_inferred(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff",
                              num_partitions=2)
        assert engine.grid.delta > 0

    def test_query_before_build_raises(self, small_dataset):
        measure = get_measure("hausdorff")
        from repro.core.grid import Grid
        engine = Repose(small_dataset, measure,
                        Grid(0, 0, 0.5, 16), num_partitions=2)
        with pytest.raises(IndexNotBuiltError):
            engine.top_k(small_dataset.trajectories[0], 3)

    def test_global_pivots_shared_across_partitions(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4, num_pivots=3)
        assert len(engine.pivots) == 3


class TestQueryOutcome:
    def test_timings_reported(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4)
        outcome = engine.top_k(small_dataset.trajectories[0], 5)
        assert outcome.wall_seconds > 0
        assert outcome.simulated_seconds > 0
        assert len(outcome.per_partition_seconds) == 4
        # With 64 simulated cores and 4 partitions, the makespan equals
        # the slowest partition.
        assert outcome.simulated_seconds == pytest.approx(
            max(outcome.per_partition_seconds))

    def test_fewer_cores_increase_makespan(self, small_dataset):
        """The same measured per-partition timings scheduled on fewer
        cores can never finish earlier."""
        from repro.cluster.engine import TaskTiming
        from repro.cluster.scheduler import simulate_schedule

        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=8,
                              cluster_spec=ClusterSpec(4, 4))
        outcome = engine.top_k(small_dataset.trajectories[0], 5)
        timings = [TaskTiming(i, s)
                   for i, s in enumerate(outcome.per_partition_seconds)]
        fast = simulate_schedule(timings, ClusterSpec(4, 4)).makespan
        slow = simulate_schedule(timings, ClusterSpec(1, 1)).makespan
        assert slow >= fast

    def test_batch_queries(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=2)
        batch = engine.top_k_batch(small_dataset.trajectories[:3], 4)
        assert len(batch.results) == 3
        assert all(len(result) == 4 for result in batch.results)
        # The default plan is the batched wave planner; per-query
        # sequential execution returns the same results.
        sequential = engine.top_k_batch(small_dataset.trajectories[:3], 4,
                                        plan="single")
        assert [r.items for r in sequential.results] == \
            [r.items for r in batch.results]


class TestBaselineFactory:
    @pytest.mark.parametrize("name,measure", [("ls", "hausdorff"),
                                              ("dft", "hausdorff"),
                                              ("dita", "frechet")])
    def test_baselines_exact(self, small_dataset, name, measure):
        measure_obj = get_measure(measure)
        engine = make_baseline(name, small_dataset, measure_obj,
                               num_partitions=4)
        engine.build()
        query = small_dataset.trajectories[8]
        expected = brute_force(measure_obj, query, small_dataset, 10)
        got = engine.top_k(query, 10).result.distances()
        assert [round(d, 9) for d in got] == [round(d, 9) for d, _ in expected]

    def test_unknown_baseline_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            make_baseline("quantum", small_dataset, "hausdorff")

    def test_heterogeneous_variant(self, small_dataset):
        """Heter-DFT (Table IX): DFT with REPOSE's partitioning."""
        engine = make_baseline("dft", small_dataset, "hausdorff",
                               num_partitions=4, strategy="heterogeneous")
        engine.build()
        assert engine.build_report is not None

    def test_index_bytes_require_build(self, small_dataset):
        engine = make_baseline("ls", small_dataset, "hausdorff")
        with pytest.raises(IndexNotBuiltError):
            engine.index_bytes()


class TestRPTrieLocalIndex:
    def test_adapter_interface(self, small_dataset, small_grid):
        measure = get_measure("hausdorff")
        index = RPTrieLocalIndex(small_grid, measure)
        index.build(small_dataset.trajectories)
        result = index.top_k(small_dataset.trajectories[0], 5)
        assert len(result) == 5
        assert index.memory_bytes() > 0

    def test_unbuilt_raises(self, small_grid):
        index = RPTrieLocalIndex(small_grid, get_measure("hausdorff"))
        with pytest.raises(IndexNotBuiltError):
            index.top_k(Trajectory([(0.0, 0.0)], traj_id=0), 1)
        with pytest.raises(IndexNotBuiltError):
            index.memory_bytes()


class TestDistributedGeneric:
    def test_custom_index_factory(self, small_dataset):
        engine = DistributedTopK(
            small_dataset,
            index_factory=lambda: LinearScanIndex("hausdorff"),
            strategy="random", num_partitions=3)
        engine.build()
        outcome = engine.top_k(small_dataset.trajectories[0], 3)
        assert len(outcome.result) == 3

    def test_custom_strategy_callable(self, small_dataset):
        def halves(dataset, num_partitions):
            mid = len(dataset.trajectories) // 2
            return [dataset.trajectories[:mid], dataset.trajectories[mid:]]

        engine = DistributedTopK(
            small_dataset,
            index_factory=lambda: LinearScanIndex("hausdorff"),
            strategy=halves, num_partitions=2)
        engine.build()
        assert engine.build_report.partition_sizes == [30, 30]


class TestDriverSidePivotDistances:
    """The driver computes dqp once per query; no partition repeats it."""

    @pytest.fixture
    def engine(self, small_dataset):
        return Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                            num_partitions=4, num_pivots=3)

    def test_batch_scheduled_forwards_dqp(self, engine, small_dataset):
        query = small_dataset.trajectories[5]
        single = engine.top_k(query, 5)
        batch = engine.top_k_batch_scheduled([query], 5)
        assert batch.results[0].items == single.result.items
        # Without forwarding, every partition would recompute the
        # query-pivot distances (num_pivots per partition).
        assert (batch.results[0].stats.distance_computations
                == single.result.stats.distance_computations)

    def test_range_query_forwards_dqp(self, engine, small_dataset):
        query = small_dataset.trajectories[5]
        radius = engine.top_k(query, 5).result.kth_distance()
        outcome = engine.range_query(query, radius)
        # Re-running the same range search partition-locally (no dqp)
        # pays num_pivots extra distance computations per partition.
        from repro.cluster.driver import merge_top_k
        locals_ = [idx.range_query(query, radius)
                   for idx in engine.local_indexes()]
        recomputed = sum(r.stats.distance_computations for r in locals_)
        pivot_overhead = 3 * engine.num_partitions
        assert (outcome.result.stats.distance_computations
                == recomputed - pivot_overhead)
        merged = sorted(it for r in locals_ for it in r.items)
        assert outcome.result.items == merged

    def test_explicit_dqp_still_wins(self, engine, small_dataset):
        query = small_dataset.trajectories[1]
        dqp = np.array([engine.measure.distance(query, p)
                        for p in engine.pivots])
        explicit = engine.top_k(query, 5, dqp=dqp)
        implicit = engine.top_k(query, 5)
        assert explicit.result.items == implicit.result.items
        assert (explicit.result.stats.distance_computations
                == implicit.result.stats.distance_computations)
