"""Randomized batch/single equivalence fuzzing.

The batch planner's contract is absolute: whatever combination of
sharing machinery a batch engages — probe caching, fingerprint dedup,
near-duplicate share groups, partition-affinity grouping, triangle or
sampled cross-query thresholds — every per-query answer must be
**bit-identical** to running that query alone under ``plan="single"``.
The targeted property tests in ``tests/test_batch_planner.py`` pin the
mechanisms; this harness hammers the *combinations*: for every measure
it replays hundreds of randomized cases mixing duplicate, jittered and
disjoint queries, random ``k``, wave sizes, ``share_eps`` and sampled
bound sizes, with ``insert()`` calls interleaved between batches (so
probe-cache epochs roll over mid-stream), and occasionally re-runs a
batch against the now-warm probe cache or through the FIFO scheduled
path.

Every case is derived from one integer seed, so the run is fully
deterministic; any violation fails with the case seed and its full
parameter set in the message.  Knobs (environment):

A second harness streams the same randomized mixes through the
always-on serving layer (:class:`~repro.cluster.service.ReposeService`
on the deterministic virtual-clock loop): randomized arrival times
land requests in randomized micro-batch cuts, recurrences are served
registry-warm, and mid-stream barrier ``insert()``s roll the index
epoch — and every served answer must still be bit-identical to
``plan="single"`` at the matching index state.

``REPRO_FUZZ_CASES``
    Cases per measure (default 36 — 216 total across 6 measures).
    The served-path harness runs ``max(2, cases // 6)`` cases per
    measure (each case covers a whole request stream twice).
``REPRO_FUZZ_SEED``
    Base seed (default 20260729).  Reproduce a CI failure by exporting
    the seed printed in the failure message and re-running this file.
"""

from __future__ import annotations

import asyncio
import itertools
import os

import numpy as np
import pytest

from repro.types import Trajectory, TrajectoryDataset
from repro.repose import Repose

MEASURES = ["hausdorff", "frechet", "dtw", "erp", "edr", "lcss"]

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260729"))
CASES_PER_MEASURE = int(os.environ.get("REPRO_FUZZ_CASES", "36"))

SPAN = 10.0
NUM_PARTITIONS = 6

#: Jitter scales for near-duplicate queries: well under the edit
#: measures' eps (so EDR/LCSS see the twin as identical), around it,
#: and well over it (a "near duplicate" only spatially).
JITTER_SCALES = (1e-5, 5e-4, 1e-2)

#: share_eps values to fuzz: off, exact-only, tight, loose, and
#: everything-is-one-group.
SHARE_EPS_CHOICES = (None, 0.0, 0.05, 0.5, 5.0, float("inf"))

_INSERT_IDS = itertools.count(100000)
_QUERY_IDS = itertools.count(900000)


def _random_trajectory(rng: np.random.Generator, traj_id: int,
                       hot: bool = True) -> Trajectory:
    """A short random walk, biased into the hot corner when ``hot``."""
    n = int(rng.integers(3, 13))
    if hot:
        start = rng.uniform(0.05 * SPAN, 0.3 * SPAN, 2)
    else:
        start = rng.uniform(0.05 * SPAN, 0.95 * SPAN, 2)
    steps = rng.normal(0.0, 0.02 * SPAN, (n - 1, 2))
    points = np.vstack([start, start + np.cumsum(steps, axis=0)])
    np.clip(points, 0.001, SPAN - 0.001, out=points)
    return Trajectory(points, traj_id=traj_id)


def _jittered(rng: np.random.Generator, base: Trajectory) -> Trajectory:
    """A near-duplicate of ``base``: same shape, perturbed points."""
    scale = float(rng.choice(JITTER_SCALES))
    points = base.points + rng.normal(0.0, scale, base.points.shape)
    np.clip(points, 0.001, SPAN - 0.001, out=points)
    return Trajectory(points, traj_id=next(_QUERY_IDS))


def _query_mix(rng: np.random.Generator, engine: Repose) -> list[Trajectory]:
    """A randomized batch: dataset queries, their exact duplicates and
    jittered near-duplicates, plus disjoint random queries, shuffled."""
    trajectories = engine.dataset.trajectories
    queries: list[Trajectory] = []
    for _ in range(int(rng.integers(1, 4))):
        base = trajectories[int(rng.integers(len(trajectories)))]
        queries.append(base)
        for _ in range(int(rng.integers(0, 3))):
            queries.append(base if rng.random() < 0.4
                           else _jittered(rng, base))
    for _ in range(int(rng.integers(0, 3))):
        queries.append(_random_trajectory(rng, next(_QUERY_IDS),
                                          hot=bool(rng.random() < 0.5)))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def _case_options(rng: np.random.Generator, k: int) -> dict:
    """Random planner knobs for one case."""
    options: dict = {"wave_size": int(rng.integers(1, 7))}
    share_eps = SHARE_EPS_CHOICES[int(rng.integers(
        len(SHARE_EPS_CHOICES)))]
    if share_eps is not None:
        options["share_eps"] = share_eps
    sample_size = int(rng.choice([-1, 0, k, 3 * k]))
    if sample_size >= 0:
        options["sample_size"] = sample_size
    return options


@pytest.mark.parametrize("measure", MEASURES)
def test_fuzz_batch_matches_single(measure):
    """Batched execution with every sharing feature randomized stays
    bit-identical, per query, to single-shot execution."""
    build_rng = np.random.default_rng((BASE_SEED, MEASURES.index(measure)))
    dataset = TrajectoryDataset(
        name=f"fuzz-{measure}",
        trajectories=[_random_trajectory(build_rng, i,
                                         hot=bool(i % 3))
                      for i in range(70)])
    engine = Repose.build(dataset, measure=measure, delta=0.4,
                          num_partitions=NUM_PARTITIONS)

    for case in range(CASES_PER_MEASURE):
        case_seed = (BASE_SEED, MEASURES.index(measure), case)
        rng = np.random.default_rng(case_seed)
        if rng.random() < 0.25:
            # Interleaved growth: bumps the probe-cache epoch, so the
            # next batch must re-probe instead of serving stale bounds.
            engine.insert(_random_trajectory(rng, next(_INSERT_IDS),
                                             hot=bool(rng.random() < 0.5)))
        queries = _query_mix(rng, engine)
        k = int(rng.integers(1, 13))
        options = _case_options(rng, k)
        context = (f"case_seed={case_seed} measure={measure} k={k} "
                   f"options={options} queries={len(queries)} "
                   f"(rerun: REPRO_FUZZ_SEED={BASE_SEED} "
                   f"python -m pytest tests/test_fuzz_equivalence.py "
                   f"-k {measure})")

        batch = engine.top_k_batch(queries, k, plan="waves",
                                   plan_options=options)
        expected = [engine.top_k(query, k, plan="single").result.items
                    for query in queries]
        for qi, (result, items) in enumerate(zip(batch.results, expected)):
            assert result.items == items, (
                f"batch/single divergence on query {qi}: {context}")

        if rng.random() < 0.3:
            # Re-issue against the warm probe cache: served probes must
            # reproduce the computed ones exactly.
            again = engine.top_k_batch(queries, k, plan="waves",
                                       plan_options=options)
            for qi, (result, items) in enumerate(zip(again.results,
                                                     expected)):
                assert result.items == items, (
                    f"warm-cache divergence on query {qi}: {context}")
        if rng.random() < 0.15:
            fifo = engine.top_k_batch(queries, k, plan="fifo")
            assert fifo.plan is not None and fifo.plan.mode == "batch-fifo"
            for qi, (result, items) in enumerate(zip(fifo.results,
                                                     expected)):
                assert result.items == items, (
                    f"fifo divergence on query {qi}: {context}")


SERVED_CASES_PER_MEASURE = max(2, CASES_PER_MEASURE // 6)


@pytest.mark.parametrize("measure", MEASURES)
def test_fuzz_served_path_matches_single(measure):
    """Requests streamed through the serving layer — randomized
    arrival times, randomized windows, cold then registry-warm, with
    optional mid-stream barrier inserts — stay bit-identical, per
    request, to single-shot execution at the same index state."""
    build_rng = np.random.default_rng((BASE_SEED, 7,
                                       MEASURES.index(measure)))
    dataset = TrajectoryDataset(
        name=f"fuzz-served-{measure}",
        trajectories=[_random_trajectory(build_rng, i, hot=bool(i % 3))
                      for i in range(70)])
    engine = Repose.build(dataset, measure=measure, delta=0.4,
                          num_partitions=NUM_PARTITIONS)
    from repro.testing import run_virtual

    for case in range(SERVED_CASES_PER_MEASURE):
        case_seed = (BASE_SEED, 7, MEASURES.index(measure), case)
        rng = np.random.default_rng(case_seed)
        queries = _query_mix(rng, engine)
        k = int(rng.integers(1, 10))
        options = _case_options(rng, k)
        max_wait_ms = float(rng.uniform(1.0, 5.0))
        max_batch = int(rng.integers(2, 6))
        delays = rng.uniform(0.0, 0.004, len(queries))
        newcomer = (_random_trajectory(rng, next(_INSERT_IDS),
                                       hot=bool(rng.random() < 0.5))
                    if rng.random() < 0.5 else None)
        context = (f"case_seed={case_seed} measure={measure} k={k} "
                   f"options={options} max_wait_ms={max_wait_ms:.2f} "
                   f"max_batch={max_batch} insert={newcomer is not None} "
                   f"queries={len(queries)} "
                   f"(rerun: REPRO_FUZZ_SEED={BASE_SEED} "
                   f"python -m pytest tests/test_fuzz_equivalence.py "
                   f"-k 'served and {measure}')")

        # Phase-1 references at the pre-insert index state must be
        # computed before any traffic runs.
        pre = [engine.top_k(query, k, plan="single").result.items
               for query in queries]

        async def scenario():
            service = engine.serve(max_wait_ms=max_wait_ms,
                                   max_batch=max_batch,
                                   plan_options=options,
                                   dispatch="inline")
            async with service:
                futures = []
                for delay, query in zip(delays, queries):
                    if delay > 0:
                        await asyncio.sleep(float(delay))
                    futures.append(await service.submit(query, k))
                phase1 = await asyncio.gather(*futures)
                if newcomer is not None:
                    await service.insert(newcomer)
                futures = [await service.submit(query, k)
                           for query in queries]
                phase2 = await asyncio.gather(*futures)
            return service, phase1, phase2

        service, phase1, phase2 = run_virtual(scenario())
        assert sum(service.stats.batch_sizes) == 2 * len(queries)
        for qi, (outcome, items) in enumerate(zip(phase1, pre)):
            assert outcome.result.items == items, (
                f"served/single divergence on phase-1 request {qi}: "
                f"{context}")

        # Phase-2 references reflect the post-insert state (the
        # engine keeps the insert applied inside the service).
        post = [engine.top_k(query, k, plan="single").result.items
                for query in queries]
        for qi, (outcome, items) in enumerate(zip(phase2, post)):
            assert outcome.result.items == items, (
                f"served/single divergence on phase-2 request {qi}: "
                f"{context}")
        if newcomer is not None:
            assert service.registry.epoch == engine.context.probe_cache.epoch, (
                f"registry missed the epoch roll: {context}")


WIDE_QUERIES = int(os.environ.get("REPRO_FUZZ_WIDE_QUERIES", "120"))


def _wide_query_mix(rng: np.random.Generator, engine: Repose,
                    total: int) -> list[Trajectory]:
    """A serving-scale batch: many near-duplicate families around
    dataset members (exact duplicates included), padded with disjoint
    random queries, shuffled.  Sized so the distinct-query count far
    exceeds the legacy 64-query cross-tightening cap."""
    trajectories = engine.dataset.trajectories
    queries: list[Trajectory] = []
    while len(queries) < (2 * total) // 3:
        base = trajectories[int(rng.integers(len(trajectories)))]
        queries.append(base)
        for _ in range(int(rng.integers(0, 4))):
            queries.append(base if rng.random() < 0.25
                           else _jittered(rng, base))
    while len(queries) < total:
        queries.append(_random_trajectory(rng, next(_QUERY_IDS),
                                          hot=bool(rng.random() < 0.5)))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def _total_refinements(plan) -> int:
    return sum(wave.exact_refinements
               for per_query in plan.per_query
               for wave in per_query.waves)


@pytest.mark.parametrize("measure", MEASURES)
def test_fuzz_wide_batch_matches_single_with_no_worse_counters(measure):
    """Serving-scale batches (far past the legacy 64-query cap) stay
    bit-identical, per query, to single-shot execution under both the
    query-index and the greedy-scan driver paths — and the index path
    never probes or refines more than the greedy path it replaces."""
    build_rng = np.random.default_rng((BASE_SEED, 23,
                                       MEASURES.index(measure)))
    dataset = TrajectoryDataset(
        name=f"fuzz-wide-{measure}",
        trajectories=[_random_trajectory(build_rng, i, hot=bool(i % 3))
                      for i in range(70)])
    engine = Repose.build(dataset, measure=measure, delta=0.4,
                          num_partitions=NUM_PARTITIONS)

    case_seed = (BASE_SEED, 23, MEASURES.index(measure), 0)
    rng = np.random.default_rng(case_seed)
    queries = _wide_query_mix(rng, engine, WIDE_QUERIES)
    k = int(rng.integers(1, 9))
    options = {"wave_size": 2, "share_eps": 0.05}
    context = (f"case_seed={case_seed} measure={measure} k={k} "
               f"queries={len(queries)} "
               f"(rerun: REPRO_FUZZ_SEED={BASE_SEED} "
               f"python -m pytest tests/test_fuzz_equivalence.py "
               f"-k 'wide and {measure}')")

    # Single-shot references, memoized by point content (duplicates
    # share one reference computation).
    memo: dict[bytes, list] = {}
    expected = []
    for query in queries:
        ckey = query.points.tobytes()
        if ckey not in memo:
            memo[ckey] = engine.top_k(query, k,
                                      plan="single").result.items
        expected.append(memo[ckey])

    # Cold indexed run (empty registry): the lifted cap must not cost
    # exactness at serving scale.
    cold = engine.top_k_batch(queries, k, plan="waves",
                              plan_options=options)
    for qi, (result, items) in enumerate(zip(cold.results, expected)):
        assert result.items == items, (
            f"indexed cold batch diverged on query {qi}: {context}")

    distinct = cold.plan.num_queries - cold.plan.queries_deduplicated
    assert distinct > 64, (
        f"workload regression: only {distinct} distinct queries, the "
        f"legacy cap would never have engaged: {context}")

    # Warm pair: identical engine state (probe cache and registry were
    # both populated by the cold run), so the two driver paths differ
    # only in their query-scan machinery.
    indexed = engine.top_k_batch(queries, k, plan="waves",
                                 plan_options=options)
    greedy = engine.top_k_batch(
        queries, k, plan="waves",
        plan_options={**options, "query_index": False})
    for qi, (result, items) in enumerate(zip(indexed.results, expected)):
        assert result.items == items, (
            f"indexed warm batch diverged on query {qi}: {context}")
    for qi, (result, items) in enumerate(zip(greedy.results, expected)):
        assert result.items == items, (
            f"greedy warm batch diverged on query {qi}: {context}")

    # Probe counters: clustering decisions are mode-identical, so the
    # probe pass must be too.
    assert (indexed.plan.probe_cache_hits
            == greedy.plan.probe_cache_hits), context
    assert (indexed.plan.probe_cache_misses
            == greedy.plan.probe_cache_misses), context
    assert indexed.plan.share_groups == greedy.plan.share_groups, context
    assert indexed.plan.queries_shared == greedy.plan.queries_shared, (
        context)

    # Refinements: the index only ever tightens thresholds further, so
    # partition-side exact work is pointwise no worse in total.
    assert (_total_refinements(indexed.plan)
            <= _total_refinements(greedy.plan)), context

    # The legacy path skips cross-query reuse entirely past its cap;
    # the index is what lifts it.
    assert greedy.plan.cross_query_tightenings == 0, context
    assert (indexed.plan.cross_query_tightenings
            >= greedy.plan.cross_query_tightenings), context
