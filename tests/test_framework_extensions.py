"""Tests for framework-level extensions: local_indexes, distributed
insert, trie stats, and the thread execution backend end to end."""

import numpy as np
import pytest

from repro.cluster.engine import ExecutionEngine
from repro.core.rptrie import RPTrie
from repro.distances import get_measure
from repro.exceptions import IndexNotBuiltError
from repro.repose import Repose
from repro.types import Trajectory


class TestLocalIndexes:
    def test_one_index_per_partition(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4)
        indexes = engine.local_indexes()
        assert len(indexes) == 4
        assert sum(ix.trie.num_trajectories for ix in indexes) == \
            len(small_dataset)

    def test_requires_build(self, small_dataset):
        from repro.core.grid import Grid
        engine = Repose(small_dataset, get_measure("hausdorff"),
                        Grid(0, 0, 0.5, 16), num_partitions=2)
        with pytest.raises(IndexNotBuiltError):
            engine.local_indexes()


class TestDistributedInsert:
    def test_inserted_found_by_query(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4)
        rng = np.random.default_rng(8)
        new = Trajectory(rng.uniform(0.2, 7.8, (7, 2)), traj_id=4242)
        engine.insert(new)
        outcome = engine.top_k(new, 1)
        assert outcome.result.ids() == [4242]

    def test_goes_to_smallest_partition(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=4)
        sizes_before = list(engine.build_report.partition_sizes)
        target = sizes_before.index(min(sizes_before))
        new = Trajectory(np.full((5, 2), 4.0), traj_id=999)
        engine.insert(new)
        assert engine.build_report.partition_sizes[target] == \
            sizes_before[target] + 1

    def test_exactness_preserved_after_inserts(self, small_dataset):
        measure = get_measure("hausdorff")
        engine = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4)
        rng = np.random.default_rng(9)
        added = []
        for i in range(5):
            traj = Trajectory(rng.uniform(0.2, 7.8, (6, 2)),
                              traj_id=5000 + i)
            engine.insert(traj)
            added.append(traj)
        everything = list(small_dataset.trajectories) + added
        query = added[2]
        got = engine.top_k(query, 8).result.distances()
        want = sorted(measure.distance(query, t) for t in everything)[:8]
        assert [round(d, 9) for d in got] == [round(d, 9) for d in want]

    def test_succinct_insert_rejected(self, small_dataset):
        engine = Repose.build(small_dataset, measure="hausdorff", delta=0.5,
                              num_partitions=2, succinct=True)
        with pytest.raises(IndexNotBuiltError):
            engine.insert(Trajectory([(1.0, 1.0)], traj_id=777))


class TestTrieStats:
    def test_stats_consistency(self, small_grid, small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        stats = trie.stats()
        assert stats.num_trajectories == len(small_trajectories)
        assert stats.node_count == trie.node_count
        assert stats.leaf_count > 0
        assert stats.depth == trie.depth()
        assert stats.avg_leaf_occupancy >= 1.0
        assert stats.memory_bytes > 0

    def test_leaves_hold_every_trajectory(self, small_grid,
                                          small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        stats = trie.stats()
        assert stats.leaf_count * stats.avg_leaf_occupancy == \
            pytest.approx(len(small_trajectories))


class TestThreadBackend:
    def test_threaded_engine_matches_serial(self, small_dataset):
        measure = get_measure("hausdorff")
        serial = Repose.build(small_dataset, measure=measure, delta=0.5,
                              num_partitions=4)
        threaded = Repose.build(small_dataset, measure=measure, delta=0.5,
                                num_partitions=4,
                                engine=ExecutionEngine("thread",
                                                       max_workers=4))
        query = small_dataset.trajectories[1]
        a = serial.top_k(query, 6).result.distances()
        b = threaded.top_k(query, 6).result.distances()
        assert [round(d, 9) for d in a] == [round(d, 9) for d in b]
