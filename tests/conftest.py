"""Shared fixtures: the paper's running example and small random data.

Also enforces a per-test wall-clock cap so a hung wave (the failure
mode the fault-tolerance layer exists to prevent) fails fast instead
of stalling the whole suite.  When the ``pytest-timeout`` plugin is
installed (CI installs it) that plugin owns the cap; otherwise a
SIGALRM fallback covers main-thread tests on POSIX.  Override with
``REPRO_TEST_TIMEOUT`` (seconds; 0 disables the fallback).
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.types import BoundingBox, Trajectory, TrajectoryDataset

#: Per-test wall-clock cap, seconds.  Generous: the slowest legitimate
#: tests (full fuzz harness cases) run well under this; only a genuine
#: hang crosses it.
TEST_TIMEOUT_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "600"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for the per-test cap (see module docstring)."""
    use_fallback = (
        TEST_TIMEOUT_SECONDS > 0
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread())
    if not use_fallback:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_SECONDS}s wall-clock cap "
            f"(likely a hung wave; see tests/conftest.py)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

# Table II of the paper (coordinates of the running example).
PAPER_TRAJECTORIES = {
    1: [(0.5, 7.5), (2.5, 7.5), (6.5, 7.5), (6.5, 4.5)],
    2: [(1.5, 0.5), (2.5, 0.5), (2.5, 4.5), (4.5, 4.5)],
    3: [(4.5, 0.5), (7.5, 0.5), (7.5, 2.5), (4.5, 2.5), (4.5, 1.5)],
    4: [(0.5, 7.5), (2.5, 7.5), (5.5, 7.5), (5.5, 3.5)],
    5: [(1.5, 0.5), (2.5, 0.5), (2.5, 5.5), (0.5, 5.5), (0.5, 2.5)],
}
PAPER_QUERY = [(0.5, 6.5), (2.5, 6.5), (4.5, 6.5)]


@pytest.fixture
def paper_trajectories() -> list[Trajectory]:
    return [Trajectory(points, traj_id=tid)
            for tid, points in PAPER_TRAJECTORIES.items()]


@pytest.fixture
def paper_query() -> Trajectory:
    return Trajectory(PAPER_QUERY, traj_id=100)


@pytest.fixture
def paper_grid() -> Grid:
    """The paper's Fig. 1 example: 8 x 8 grid with unit cells."""
    return Grid(origin_x=0.0, origin_y=0.0, delta=1.0, resolution=8)


def random_walk_trajectories(count: int, seed: int = 0,
                             min_len: int = 5, max_len: int = 25,
                             span: float = 8.0) -> list[Trajectory]:
    """Deterministic random-walk trajectories inside [0, span]^2."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(count):
        n = int(rng.integers(min_len, max_len))
        start = rng.uniform(0.1 * span, 0.9 * span, 2)
        steps = rng.normal(0, 0.04 * span, (n - 1, 2))
        points = np.vstack([start, start + np.cumsum(steps, axis=0)])
        np.clip(points, 0.001, span - 0.001, out=points)
        trajectories.append(Trajectory(points, traj_id=i))
    return trajectories


@pytest.fixture
def small_trajectories() -> list[Trajectory]:
    return random_walk_trajectories(60, seed=3)


@pytest.fixture
def small_dataset(small_trajectories) -> TrajectoryDataset:
    return TrajectoryDataset(name="small", trajectories=list(small_trajectories))


@pytest.fixture
def small_grid() -> Grid:
    return Grid.fit(BoundingBox(0.0, 0.0, 8.0, 8.0), delta=0.5)
