"""Tests for threshold-aware (early-abandoning) distance evaluation.

Contract: exact below the threshold; any value >= threshold otherwise.
"""

import numpy as np
import pytest

from repro.distances import get_measure
from repro.distances.threshold import distance_with_threshold

MEASURES = {
    "hausdorff": get_measure("hausdorff"),
    "frechet": get_measure("frechet"),
    "dtw": get_measure("dtw"),
    "lcss": get_measure("lcss", eps=0.3),
    "edr": get_measure("edr", eps=0.3),
    "erp": get_measure("erp"),
}


def _pairs(count, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        a = rng.uniform(0, 4, (int(rng.integers(2, 12)), 2))
        b = rng.uniform(0, 4, (int(rng.integers(2, 12)), 2))
        out.append((a, b))
    return out


@pytest.mark.parametrize("name", list(MEASURES))
class TestContract:
    def test_exact_when_below_threshold(self, name):
        measure = MEASURES[name]
        for a, b in _pairs(15, seed=1):
            exact = measure.distance(a, b)
            got = distance_with_threshold(measure, a, b, exact + 1.0)
            assert got == pytest.approx(exact)

    def test_at_least_threshold_when_abandoned(self, name):
        measure = MEASURES[name]
        for a, b in _pairs(15, seed=2):
            exact = measure.distance(a, b)
            if exact <= 0:
                continue
            got = distance_with_threshold(measure, a, b, exact / 2)
            # Either it computed the exact value, or it abandoned with a
            # value at or above the threshold.
            assert got == pytest.approx(exact) or got >= exact / 2

    def test_never_exceeds_exact(self, name):
        """Abandoned values are lower bounds: they never overestimate."""
        measure = MEASURES[name]
        for a, b in _pairs(15, seed=3):
            exact = measure.distance(a, b)
            got = distance_with_threshold(measure, a, b, exact / 3 + 1e-12)
            assert got <= exact + 1e-9

    def test_infinite_threshold_is_exact(self, name):
        measure = MEASURES[name]
        a, b = _pairs(1, seed=4)[0]
        got = distance_with_threshold(measure, a, b, float("inf"))
        assert got == pytest.approx(measure.distance(a, b))


class TestPrefilters:
    def test_dtw_row_minima_bound_is_sound(self):
        from repro.distances.matrix import point_distance_matrix
        measure = MEASURES["dtw"]
        for a, b in _pairs(20, seed=5):
            dm = point_distance_matrix(a, b)
            lower = max(dm.min(axis=1).sum(), dm.min(axis=0).sum())
            assert lower <= measure.distance(a, b) + 1e-9

    def test_erp_mass_difference_bound_is_sound(self):
        measure = MEASURES["erp"]
        for a, b in _pairs(20, seed=6):
            mass_a = np.hypot(a[:, 0], a[:, 1]).sum()
            mass_b = np.hypot(b[:, 0], b[:, 1]).sum()
            assert abs(mass_a - mass_b) <= measure.distance(a, b) + 1e-9

    def test_edr_length_difference_bound_is_sound(self):
        measure = MEASURES["edr"]
        for a, b in _pairs(20, seed=7):
            assert abs(len(a) - len(b)) <= measure.distance(a, b) + 1e-9
