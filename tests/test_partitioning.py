"""Tests for geohash, clustering and the global partitioning strategies."""

import numpy as np
import pytest

from repro.exceptions import PartitioningError
from repro.partitioning.clustering import GeohashClustering
from repro.partitioning.geohash import (
    geohash_cell,
    geohash_prefix,
    trajectory_signature,
)
from repro.partitioning.strategies import (
    heterogeneous_partitions,
    homogeneous_partitions,
    make_strategy,
    random_partitions,
)
from repro.types import BoundingBox, Trajectory, TrajectoryDataset

BOX = BoundingBox(0.0, 0.0, 8.0, 8.0)


class TestGeohash:
    def test_precision_zero_is_single_cell(self):
        assert geohash_cell(1.0, 7.0, BOX, 0) == 0
        assert geohash_cell(7.0, 1.0, BOX, 0) == 0

    def test_quadrants_distinct_at_precision_one(self):
        codes = {geohash_cell(x, y, BOX, 1)
                 for x, y in ((1, 1), (1, 7), (7, 1), (7, 7))}
        assert len(codes) == 4

    def test_nested_prefix_property(self):
        """Coarsening a fine geohash equals hashing coarsely."""
        rng = np.random.default_rng(0)
        for x, y in rng.uniform(0, 8, (50, 2)):
            fine = geohash_cell(x, y, BOX, 6)
            coarse = geohash_cell(x, y, BOX, 3)
            assert geohash_prefix(fine, 6, 3) == coarse

    def test_prefix_rejects_refinement(self):
        with pytest.raises(ValueError):
            geohash_prefix(0, 2, 3)

    def test_negative_precision_rejected(self):
        with pytest.raises(ValueError):
            geohash_cell(1.0, 1.0, BOX, -1)

    def test_signature_collapses_consecutive(self):
        traj = Trajectory([(0.1, 0.1), (0.2, 0.2), (7.9, 7.9)], traj_id=0)
        sig = trajectory_signature(traj, BOX, 3)
        assert len(sig) == 2

    def test_signature_close_trajectories_equal(self):
        a = Trajectory([(1.0, 1.0), (1.2, 1.1)], traj_id=0)
        b = Trajectory([(1.05, 1.04), (1.15, 1.12)], traj_id=1)
        assert (trajectory_signature(a, BOX, 2)
                == trajectory_signature(b, BOX, 2))


def _skewed_dataset(count=60, seed=0) -> TrajectoryDataset:
    """Two spatial groups of similar trajectories."""
    rng = np.random.default_rng(seed)
    ds = TrajectoryDataset(name="skewed")
    for i in range(count):
        center = (1.5, 1.5) if i % 2 == 0 else (6.5, 6.5)
        start = rng.normal(center, 0.1)
        steps = rng.normal(0, 0.05, (6, 2))
        points = np.clip(np.vstack([start, start + np.cumsum(steps, axis=0)]),
                         0.01, 7.99)
        ds.add(Trajectory(points, traj_id=i))
    return ds


class TestClustering:
    def test_target_cluster_count_reached(self):
        ds = _skewed_dataset()
        result = GeohashClustering(target_clusters=8).cluster(ds)
        assert 1 <= result.num_clusters <= 8

    def test_labels_dense(self):
        ds = _skewed_dataset()
        result = GeohashClustering(target_clusters=6).cluster(ds)
        assert set(result.labels) == set(range(result.num_clusters))

    def test_similar_trajectories_share_cluster(self):
        ds = _skewed_dataset()
        result = GeohashClustering(target_clusters=2).cluster(ds)
        left = {result.labels[i] for i in range(len(ds)) if i % 2 == 0}
        right = {result.labels[i] for i in range(len(ds)) if i % 2 == 1}
        # The two spatial groups do not mix at 2 clusters.
        assert left.isdisjoint(right)

    def test_empty_dataset(self):
        result = GeohashClustering(target_clusters=4).cluster(
            TrajectoryDataset())
        assert result.labels == []
        assert result.num_clusters == 0

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            GeohashClustering(target_clusters=0)


class TestStrategies:
    @pytest.mark.parametrize("strategy", [heterogeneous_partitions,
                                          homogeneous_partitions,
                                          random_partitions])
    def test_partition_is_exact_cover(self, strategy):
        ds = _skewed_dataset()
        partitions = strategy(ds, 8)
        ids = sorted(t.traj_id for part in partitions for t in part)
        assert ids == sorted(ds.ids())

    @pytest.mark.parametrize("strategy", [heterogeneous_partitions,
                                          homogeneous_partitions,
                                          random_partitions])
    def test_partition_sizes_balanced(self, strategy):
        ds = _skewed_dataset(count=61)
        sizes = [len(p) for p in strategy(ds, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_heterogeneous_spreads_similar_trajectories(self):
        """Each partition receives members of both spatial groups."""
        ds = _skewed_dataset(count=64)
        partitions = heterogeneous_partitions(ds, 4)
        for part in partitions:
            groups = {t.traj_id % 2 for t in part}
            assert groups == {0, 1}

    def test_homogeneous_concentrates_similar_trajectories(self):
        """Most partitions are dominated by one spatial group."""
        ds = _skewed_dataset(count=64)
        partitions = homogeneous_partitions(ds, 4)
        dominated = 0
        for part in partitions:
            counts = [sum(1 for t in part if t.traj_id % 2 == g)
                      for g in (0, 1)]
            if max(counts) >= 0.9 * len(part):
                dominated += 1
        assert dominated >= 3

    def test_random_deterministic_by_seed(self):
        ds = _skewed_dataset()
        a = random_partitions(ds, 4, seed=7)
        b = random_partitions(ds, 4, seed=7)
        assert [[t.traj_id for t in p] for p in a] == \
            [[t.traj_id for t in p] for p in b]

    def test_make_strategy_lookup(self):
        assert make_strategy("heterogeneous") is heterogeneous_partitions
        assert make_strategy("HOMOGENEOUS") is homogeneous_partitions
        with pytest.raises(PartitioningError):
            make_strategy("bogus")

    def test_single_partition(self):
        ds = _skewed_dataset(count=10)
        partitions = heterogeneous_partitions(ds, 1)
        assert len(partitions) == 1
        assert len(partitions[0]) == 10
