"""Tests for the mini-RDD engine, partitioners and simulated scheduler."""

import pytest

from repro.cluster.engine import (
    ExecutionEngine,
    TaskTiming,
    WorkloadHints,
    choose_backend,
    require_results,
)
from repro.cluster.driver import merge_top_k
from repro.cluster.partitioner import (
    HashPartitioner,
    ListPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.cluster.rdd import ClusterContext, _chunk
from repro.cluster.scheduler import ClusterSpec, simulate_schedule
from repro.core.search import TopKResult
from repro.exceptions import PartitioningError


class TestChunk:
    def test_even_split(self):
        assert _chunk(list(range(8)), 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_front_loaded(self):
        parts = _chunk(list(range(7)), 3)
        assert [len(p) for p in parts] == [3, 2, 2]

    def test_more_partitions_than_items(self):
        parts = _chunk([1, 2], 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            _chunk([1], 0)


class TestPartitioners:
    def test_round_robin_cycles(self):
        p = RoundRobinPartitioner(3)
        assert [p.partition(None) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hash_partitioner_in_range(self):
        p = HashPartitioner(4, key=lambda s: s)
        for word in ("alpha", "beta", "gamma"):
            assert 0 <= p.partition(word) < 4

    def test_list_partitioner(self):
        class Item:
            def __init__(self, tid):
                self.traj_id = tid
        p = ListPartitioner(2, assignment={1: 0, 2: 1})
        assert p.partition(Item(1)) == 0
        assert p.partition(Item(2)) == 1
        with pytest.raises(PartitioningError):
            p.partition(Item(3))

    def test_split_collects_partitions(self):
        p = RoundRobinPartitioner(2)
        assert p.split([1, 2, 3, 4]) == [[1, 3], [2, 4]]

    def test_invalid_partition_count(self):
        with pytest.raises(PartitioningError):
            RoundRobinPartitioner(0)

    def test_out_of_range_pid_detected(self):
        class Bad(Partitioner):
            def partition(self, element):
                return 99
        with pytest.raises(PartitioningError):
            Bad(2).split([1])


class TestRDD:
    def test_map_collect(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(10), num_partitions=3)
        assert rdd.map(lambda v: v * 2).collect() == [v * 2 for v in range(10)]

    def test_filter(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(10), num_partitions=3)
        assert rdd.filter(lambda v: v % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_map_partitions_sees_whole_partition(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(9), num_partitions=3)
        sums = rdd.map_partitions(lambda part: [sum(part)]).collect()
        assert sums == [3, 12, 21]

    def test_flat_map(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize([1, 2], num_partitions=2)
        assert rdd.flat_map(lambda v: [v, v]).collect() == [1, 1, 2, 2]

    def test_lazy_until_action(self):
        ctx = ClusterContext()
        calls = []
        rdd = ctx.parallelize(range(4), num_partitions=2).map(
            lambda v: calls.append(v) or v)
        assert calls == []
        rdd.collect()
        assert sorted(calls) == [0, 1, 2, 3]

    def test_chained_transformations(self):
        ctx = ClusterContext()
        rdd = (ctx.parallelize(range(20), num_partitions=4)
               .filter(lambda v: v % 2 == 0)
               .map(lambda v: v + 1))
        assert rdd.collect() == [v + 1 for v in range(20) if v % 2 == 0]

    def test_count_and_reduce(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(10), num_partitions=3)
        assert rdd.count() == 10
        assert rdd.reduce(lambda a, b: a + b) == 45

    def test_reduce_empty_raises(self):
        ctx = ClusterContext()
        with pytest.raises(ValueError):
            ctx.parallelize([], num_partitions=2).reduce(lambda a, b: a)

    def test_timings_recorded_per_partition(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(8), num_partitions=4)
        rdd.collect()
        assert len(ctx.last_timings) == 4
        assert all(t.seconds >= 0 for t in ctx.last_timings)

    def test_custom_partitioner(self):
        ctx = ClusterContext()
        rdd = ctx.parallelize(range(6), partitioner=RoundRobinPartitioner(2))
        assert rdd.collect_partitions() == [[0, 2, 4], [1, 3, 5]]

    def test_thread_backend_matches_serial(self):
        serial = ClusterContext(ExecutionEngine("serial"))
        threaded = ClusterContext(ExecutionEngine("thread", max_workers=4))
        data = list(range(100))
        fn = lambda part: [sum(part)]
        a = serial.parallelize(data, 8).map_partitions(fn).collect()
        b = threaded.parallelize(data, 8).map_partitions(fn).collect()
        assert a == b

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ExecutionEngine("gpu")


class TestScheduler:
    def test_single_core_sums(self):
        timings = [TaskTiming(i, 1.0) for i in range(4)]
        report = simulate_schedule(timings, ClusterSpec(1, 1))
        assert report.makespan == pytest.approx(4.0)

    def test_enough_cores_takes_max(self):
        timings = [TaskTiming(0, 3.0), TaskTiming(1, 1.0), TaskTiming(2, 2.0)]
        report = simulate_schedule(timings, ClusterSpec(1, 4))
        assert report.makespan == pytest.approx(3.0)

    def test_two_waves(self):
        # 4 equal tasks on 2 cores: two waves.
        timings = [TaskTiming(i, 1.0) for i in range(4)]
        report = simulate_schedule(timings, ClusterSpec(1, 2))
        assert report.makespan == pytest.approx(2.0)

    def test_imbalance_detected(self):
        balanced = [TaskTiming(i, 1.0) for i in range(4)]
        skewed = [TaskTiming(0, 4.0)] + [TaskTiming(i, 0.1) for i in range(1, 4)]
        spec = ClusterSpec(2, 2)
        assert (simulate_schedule(skewed, spec).imbalance
                > simulate_schedule(balanced, spec).imbalance)

    def test_utilization_bounds(self):
        timings = [TaskTiming(i, float(i + 1)) for i in range(10)]
        report = simulate_schedule(timings, ClusterSpec(2, 2))
        assert 0.0 < report.utilization <= 1.0

    def test_empty_schedule(self):
        report = simulate_schedule([], ClusterSpec(1, 2))
        assert report.makespan == 0.0

    def test_paper_cluster_defaults(self):
        assert ClusterSpec().total_cores == 64


class TestMergeTopK:
    def test_merges_and_sorts(self):
        a = TopKResult(items=[(1.0, 10), (3.0, 11)])
        b = TopKResult(items=[(2.0, 20), (4.0, 21)])
        merged = merge_top_k([a, b], k=3)
        assert merged.items == [(1.0, 10), (2.0, 20), (3.0, 11)]

    def test_fewer_than_k(self):
        merged = merge_top_k([TopKResult(items=[(1.0, 1)])], k=5)
        assert len(merged) == 1

    def test_stats_summed(self):
        a = TopKResult(items=[])
        a.stats.nodes_visited = 3
        b = TopKResult(items=[])
        b.stats.nodes_visited = 4
        assert merge_top_k([a, b], k=1).stats.nodes_visited == 7


def _square(value):
    """Module-level so the process backend can pickle it."""
    return value * value


class _SquareTask:
    """Picklable zero-argument task for the process backend."""

    def __init__(self, value):
        self.value = value

    def __call__(self):
        return _square(self.value)


class TestProcessBackend:
    def test_backend_selection(self):
        assert ExecutionEngine("process").backend == "process"
        with pytest.raises(ValueError):
            ExecutionEngine("fork-bomb")

    def test_results_in_partition_order(self):
        engine = ExecutionEngine("process", max_workers=2)
        tasks = [_SquareTask(v) for v in range(6)]
        outcomes, timings = engine.run(tasks)
        assert require_results(outcomes) == [0, 1, 4, 9, 16, 25]
        assert [t.partition_id for t in timings] == list(range(6))
        assert all(t.seconds >= 0 for t in timings)

    def test_matches_serial_backend(self):
        tasks = [_SquareTask(v) for v in range(5)]
        serial, _ = ExecutionEngine("serial").run(tasks)
        procs, _ = ExecutionEngine("process", max_workers=2).run(tasks)
        assert require_results(procs) == require_results(serial)

    def test_empty_task_list(self):
        outcomes, timings = ExecutionEngine("process").run([])
        assert outcomes == [] and timings == []

class TestAutoBackend:
    def test_no_hints_stays_serial(self):
        assert choose_backend(None) == "serial"
        assert choose_backend(WorkloadHints(num_tasks=1)) == "serial"

    def test_tiny_work_stays_serial(self):
        hints = WorkloadHints(measure="hausdorff", partition_points=100,
                              num_tasks=4)
        assert choose_backend(hints) == "serial"

    def test_numpy_heavy_work_goes_to_threads(self):
        hints = WorkloadHints(measure="hausdorff", partition_points=10**6,
                              num_tasks=16)
        assert choose_backend(hints) == "thread"

    def test_gil_heavy_work_goes_to_processes(self):
        hints = WorkloadHints(measure="lcss", partition_points=10**6,
                              num_tasks=16, batch_width=8)
        assert choose_backend(hints) == "process"

    def test_warm_pool_lowers_the_process_bar(self):
        hints = WorkloadHints(measure="edr", partition_points=4_000,
                              num_tasks=16)
        assert choose_backend(hints, process_pool_warm=False) == "thread"
        assert choose_backend(hints, process_pool_warm=True) == "process"

    def test_auto_resolution_recorded(self):
        engine = ExecutionEngine("auto", max_workers=2)
        hints = WorkloadHints(measure="hausdorff", partition_points=10**6,
                              num_tasks=3)
        outcomes, timings = engine.run(
            [lambda: 1, lambda: 2, lambda: 3], hints=hints)
        assert require_results(outcomes) == [1, 2, 3]
        assert engine.last_backend == "thread"
        engine.close()

    def test_auto_falls_back_to_threads_on_unpicklable_tasks(self):
        engine = ExecutionEngine("auto", max_workers=2)
        hints = WorkloadHints(measure="lcss", partition_points=10**6,
                              num_tasks=2, batch_width=8)
        assert choose_backend(hints) == "process"
        outcomes, _ = engine.run([lambda: 1, lambda: 2], hints=hints)
        assert require_results(outcomes) == [1, 2]
        assert engine.last_backend == "thread"
        engine.close()

    def test_mixed_picklability_retries_only_failed_tasks(self):
        # Picklable tasks execute once in the process pool; only the
        # unpicklable one is retried on threads (no duplicated work).
        engine = ExecutionEngine("auto", max_workers=2)
        hints = WorkloadHints(measure="lcss", partition_points=10**6,
                              num_tasks=3, batch_width=8)
        tasks = [_SquareTask(3), lambda: 99, _SquareTask(5)]
        outcomes, timings = engine.run(tasks, hints=hints)
        assert require_results(outcomes) == [9, 99, 25]
        assert [t.partition_id for t in timings] == [0, 1, 2]
        assert engine.last_backend == "mixed"
        engine.close()

    def test_explicit_process_backend_still_raises(self):
        engine = ExecutionEngine("process", max_workers=2)
        import pickle
        with pytest.raises((pickle.PicklingError, AttributeError)):
            engine.run([lambda: 1])
        engine.close()

    def test_auto_never_changes_distributed_results(self):
        # The acceptance regression: backend auto-selection is a pure
        # placement decision; top-k and scheduled-batch results must be
        # identical to the serial engine's.
        from repro.repose import Repose
        from repro.types import Trajectory, TrajectoryDataset
        import numpy as np

        rng = np.random.default_rng(5)
        dataset = TrajectoryDataset(name="auto", trajectories=[
            Trajectory(rng.uniform(0, 1, (int(rng.integers(4, 20)), 2)),
                       traj_id=i) for i in range(120)])
        queries = [dataset.trajectories[i] for i in (0, 17, 44)]
        for measure in ("hausdorff", "dtw"):
            serial = Repose.build(dataset, measure=measure,
                                  num_partitions=6)
            auto = Repose.build(dataset, measure=measure,
                                num_partitions=6, engine="auto")
            for query in queries:
                assert (auto.top_k(query, 7).result.items
                        == serial.top_k(query, 7).result.items)
            batch_auto = auto.top_k_batch_scheduled(queries, 5)
            batch_serial = serial.top_k_batch_scheduled(queries, 5)
            assert ([r.items for r in batch_auto.results]
                    == [r.items for r in batch_serial.results])
            radius = serial.top_k(queries[0], 5).result.kth_distance()
            assert (auto.range_query(queries[0], radius).result.items
                    == serial.range_query(queries[0], radius).result.items)
            auto.context.engine.close()


class TestPersistentPools:
    def test_thread_pool_reused_across_runs(self):
        engine = ExecutionEngine("thread", max_workers=2)
        engine.run([lambda: 1])
        pool = engine._thread_pool
        engine.run([lambda: 2])
        assert engine._thread_pool is pool
        engine.close()
        assert engine._thread_pool is None

    def test_process_pool_reused_across_runs(self):
        engine = ExecutionEngine("process", max_workers=2)
        tasks = [_SquareTask(v) for v in range(3)]
        engine.run(tasks)
        pool = engine._process_pool
        outcomes, _ = engine.run(tasks)
        assert engine._process_pool is pool
        assert require_results(outcomes) == [0, 1, 4]
        engine.close()

    def test_context_manager_closes(self):
        with ExecutionEngine("thread", max_workers=2) as engine:
            engine.run([lambda: 1])
            assert engine._thread_pool is not None
        assert engine._thread_pool is None


class TestProcessBackendDistributed:
    def test_distributed_engine_on_process_backend(self):
        # Top-k through the mini-RDD with real subprocess workers; the
        # LinearScanIndex partitions pickle cleanly.
        from repro.repose import make_baseline
        from repro.types import Trajectory, TrajectoryDataset
        import numpy as np

        rng = np.random.default_rng(0)
        dataset = TrajectoryDataset(name="p", trajectories=[
            Trajectory(rng.uniform(0, 1, (5, 2)), traj_id=i)
            for i in range(30)])
        serial = make_baseline("ls", dataset, "hausdorff", num_partitions=3,
                               engine=ExecutionEngine("serial"))
        procs = make_baseline("ls", dataset, "hausdorff", num_partitions=3,
                              engine=ExecutionEngine("process",
                                                     max_workers=2))
        serial.build()
        procs.build()
        query = dataset.trajectories[0]
        assert (procs.top_k(query, 5).result.items
                == serial.top_k(query, 5).result.items)
