"""Tests for pivot downsampling (construction-cost cap)."""

import numpy as np
import pytest

from repro.core.pivots import (
    DEFAULT_MAX_PIVOT_LENGTH,
    downsample_trajectory,
    select_pivots,
)
from repro.core.rptrie import RPTrie
from repro.core.search import local_search
from repro.distances import get_measure
from repro.types import Trajectory


class TestDownsample:
    def test_short_trajectory_untouched(self):
        traj = Trajectory(np.random.default_rng(0).uniform(0, 1, (10, 2)),
                          traj_id=0)
        assert downsample_trajectory(traj, 128) is traj

    def test_long_trajectory_capped(self):
        points = np.random.default_rng(1).uniform(0, 1, (700, 2))
        traj = Trajectory(points, traj_id=0)
        short = downsample_trajectory(traj, 64)
        assert len(short) <= 64
        np.testing.assert_array_equal(short.points[0], points[0])
        np.testing.assert_array_equal(short.points[-1], points[-1])

    def test_subsample_preserves_order(self):
        points = np.column_stack([np.arange(500.0), np.zeros(500)])
        short = downsample_trajectory(Trajectory(points, traj_id=0), 50)
        xs = short.points[:, 0]
        assert (np.diff(xs) > 0).all()


class TestSelectionWithLongTrajectories:
    def test_selected_pivots_are_capped(self):
        rng = np.random.default_rng(2)
        pool = [Trajectory(rng.uniform(0, 1, (600, 2)), traj_id=i)
                for i in range(12)]
        pivots = select_pivots(pool, get_measure("hausdorff"), num_pivots=3,
                               num_groups=3)
        assert all(len(p) <= DEFAULT_MAX_PIVOT_LENGTH for p in pivots)

    def test_small_pool_also_capped(self):
        rng = np.random.default_rng(3)
        pool = [Trajectory(rng.uniform(0, 1, (600, 2)), traj_id=i)
                for i in range(2)]
        pivots = select_pivots(pool, get_measure("hausdorff"), num_pivots=5)
        assert all(len(p) <= DEFAULT_MAX_PIVOT_LENGTH for p in pivots)


class TestSearchExactWithDownsampledPivots:
    def test_exactness_preserved(self, small_grid):
        """Pivot pruning with downsampled pivots must stay exact."""
        rng = np.random.default_rng(4)
        trajs = [Trajectory(np.clip(
            rng.uniform(1, 7, 2) + np.cumsum(rng.normal(0, 0.05, (300, 2)),
                                             axis=0), 0.01, 7.99), traj_id=i)
            for i in range(25)]
        measure = get_measure("frechet")
        trie = RPTrie(small_grid, measure, num_pivots=3,
                      pivot_groups=2).build(trajs)
        assert all(len(p) <= DEFAULT_MAX_PIVOT_LENGTH for p in trie.pivots)
        query = trajs[7]
        result = local_search(trie, query, 5)
        expected = sorted(measure.distance(query, t) for t in trajs)[:5]
        assert [round(d, 9) for d in result.distances()] == \
            [round(d, 9) for d in expected]
