"""Tests for pivot trajectory selection (Section III-B)."""

import numpy as np

from repro.core.pivots import select_pivots
from repro.distances import get_measure
from repro.types import Trajectory


def _cluster_data():
    """Two tight clusters far apart plus one singleton in between."""
    rng = np.random.default_rng(0)
    trajectories = []
    tid = 0
    for center in ((0.0, 0.0), (100.0, 100.0)):
        for _ in range(10):
            points = rng.normal(center, 0.1, (5, 2))
            trajectories.append(Trajectory(points, traj_id=tid))
            tid += 1
    trajectories.append(
        Trajectory(rng.normal((50.0, 50.0), 0.1, (5, 2)), traj_id=tid))
    return trajectories


class TestSelectPivots:
    def test_returns_requested_count(self):
        measure = get_measure("hausdorff")
        pivots = select_pivots(_cluster_data(), measure, num_pivots=3,
                               num_groups=5)
        assert len(pivots) == 3

    def test_small_pool_returns_everything(self):
        measure = get_measure("hausdorff")
        data = _cluster_data()[:3]
        assert select_pivots(data, measure, num_pivots=5) == data

    def test_zero_pivots(self):
        measure = get_measure("hausdorff")
        assert select_pivots(_cluster_data(), measure, num_pivots=0) == []

    def test_prefers_spread_out_groups(self):
        """With enough sampled groups, chosen pivots span both clusters."""
        measure = get_measure("hausdorff")
        data = _cluster_data()
        pivots = select_pivots(data, measure, num_pivots=2, num_groups=40,
                               rng=np.random.default_rng(1))
        centroids = [p.centroid() for p in pivots]
        spread = max(
            np.hypot(a[0] - b[0], a[1] - b[1])
            for a in centroids for b in centroids)
        assert spread > 50.0  # one pivot per far-apart cluster

    def test_deterministic_with_seeded_rng(self):
        measure = get_measure("hausdorff")
        data = _cluster_data()
        first = select_pivots(data, measure, num_pivots=3,
                              rng=np.random.default_rng(5))
        second = select_pivots(data, measure, num_pivots=3,
                               rng=np.random.default_rng(5))
        assert [p.traj_id for p in first] == [p.traj_id for p in second]

    def test_pivots_are_dataset_members(self):
        measure = get_measure("frechet")
        data = _cluster_data()
        ids = {t.traj_id for t in data}
        pivots = select_pivots(data, measure, num_pivots=4)
        assert all(p.traj_id in ids for p in pivots)
