"""Unit tests for trajectory and dataset containers."""

import numpy as np
import pytest

from repro.exceptions import InvalidTrajectoryError
from repro.types import BoundingBox, Trajectory, TrajectoryDataset


class TestTrajectory:
    def test_construction_from_tuples(self):
        traj = Trajectory([(0.0, 1.0), (2.0, 3.0)])
        assert len(traj) == 2
        assert traj.points.dtype == np.float64

    def test_points_are_immutable(self):
        traj = Trajectory([(0.0, 1.0), (2.0, 3.0)])
        with pytest.raises(ValueError):
            traj.points[0, 0] = 9.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory(np.empty((0, 2)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([(1.0, 2.0, 3.0)])

    def test_rejects_nan(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([(np.nan, 0.0)])

    def test_rejects_inf(self):
        with pytest.raises(InvalidTrajectoryError):
            Trajectory([(np.inf, 0.0)])

    def test_equality_considers_id_and_points(self):
        a = Trajectory([(0.0, 0.0)], traj_id=1)
        b = Trajectory([(0.0, 0.0)], traj_id=1)
        c = Trajectory([(0.0, 0.0)], traj_id=2)
        assert a == b
        assert a != c

    def test_hashable(self):
        a = Trajectory([(0.0, 0.0)], traj_id=1)
        b = Trajectory([(0.0, 0.0)], traj_id=1)
        assert len({a, b}) == 1

    def test_bounding_box(self):
        traj = Trajectory([(0.0, 5.0), (2.0, 1.0), (1.0, 3.0)])
        box = traj.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, 1.0, 2.0, 5.0)

    def test_polyline_length(self):
        traj = Trajectory([(0.0, 0.0), (3.0, 4.0), (3.0, 4.0)])
        assert traj.length() == pytest.approx(5.0)

    def test_length_of_single_point(self):
        assert Trajectory([(1.0, 1.0)]).length() == 0.0

    def test_centroid(self):
        traj = Trajectory([(0.0, 0.0), (2.0, 4.0)])
        assert traj.centroid() == (1.0, 2.0)

    def test_slice_keeps_id(self):
        traj = Trajectory([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)], traj_id=7)
        part = traj.slice(1, 3)
        assert part.traj_id == 7
        assert len(part) == 2

    def test_segments_shape(self):
        traj = Trajectory([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert traj.segments().shape == (2, 2, 2)

    def test_segments_of_single_point_empty(self):
        assert Trajectory([(0.0, 0.0)]).segments().shape == (0, 2, 2)

    def test_iteration_yields_points(self):
        traj = Trajectory([(0.0, 0.0), (1.0, 2.0)])
        points = list(traj)
        assert len(points) == 2
        assert tuple(points[1]) == (1.0, 2.0)


class TestBoundingBox:
    def test_span(self):
        box = BoundingBox(0.0, 1.0, 4.0, 3.0)
        assert box.span == (4.0, 2.0)

    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.5, 0.5)
        assert box.contains(1.0, 1.0)  # boundary inclusive
        assert not box.contains(1.5, 0.5)

    def test_union(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, -1.0, 3.0, 0.5)
        u = a.union(b)
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0.0, -1.0, 3.0, 1.0)

    def test_min_distance_inside_is_zero(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        assert box.min_distance(1.0, 1.0) == 0.0

    def test_min_distance_diagonal(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance(4.0, 5.0) == pytest.approx(5.0)

    def test_min_distance_axis_aligned(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance(0.5, 3.0) == pytest.approx(2.0)


class TestTrajectoryDataset:
    def test_add_assigns_dense_ids(self):
        ds = TrajectoryDataset()
        first = ds.add(Trajectory([(0.0, 0.0)]))
        second = ds.add(Trajectory([(1.0, 1.0)]))
        assert (first.traj_id, second.traj_id) == (0, 1)

    def test_add_respects_existing_id(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)], traj_id=10))
        nxt = ds.add(Trajectory([(1.0, 1.0)]))
        assert nxt.traj_id == 11

    def test_duplicate_id_rejected(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)], traj_id=3))
        with pytest.raises(InvalidTrajectoryError):
            ds.add(Trajectory([(1.0, 1.0)], traj_id=3))

    def test_get_by_id(self):
        ds = TrajectoryDataset()
        traj = ds.add(Trajectory([(0.0, 0.0)], traj_id=5))
        assert ds.get(5) is traj
        assert 5 in ds
        assert 6 not in ds

    def test_bounding_box_unions_all(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)]))
        ds.add(Trajectory([(5.0, -2.0)]))
        box = ds.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, -2.0, 5.0, 0.0)

    def test_bounding_box_of_empty_raises(self):
        with pytest.raises(InvalidTrajectoryError):
            TrajectoryDataset().bounding_box()

    def test_average_length(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)] * 2))
        ds.add(Trajectory([(0.0, 0.0)] * 4))
        assert ds.average_length() == 3.0

    def test_subset_fraction(self):
        ds = TrajectoryDataset()
        for _ in range(10):
            ds.add(Trajectory([(0.0, 0.0)]))
        half = ds.subset(0.5)
        assert len(half) == 5
        assert half.trajectories[0].traj_id == ds.trajectories[0].traj_id

    def test_subset_rejects_bad_fraction(self):
        ds = TrajectoryDataset()
        ds.add(Trajectory([(0.0, 0.0)]))
        with pytest.raises(ValueError):
            ds.subset(0.0)
        with pytest.raises(ValueError):
            ds.subset(1.5)

    def test_constructor_assigns_ids(self):
        ds = TrajectoryDataset(trajectories=[Trajectory([(0.0, 0.0)]),
                                             Trajectory([(1.0, 1.0)])])
        assert ds.ids() == [0, 1]
