"""The multi-query batch planner and its supporting machinery.

The load-bearing property: ``top_k_batch(plan="waves")`` — shared
(cached) probes, partition-affinity task grouping, per-query threshold
vectors with cross-query triangle-inequality reuse — must return
**bit-identical** per-query results to running each query alone under
``plan="single"``, for every measure.  Alongside that property live
unit tests for the pieces: the multi-query local search and its shared
gather view, the per-query running-merge vector and its cross-query
broadcast, the probe cache and its epoch invalidation, LPT wave
ordering, the multi-query workload hints, and the per-query
``SearchStats``/``PlanReport`` accounting (satellite: ``merge_stats``
field-generic folding under multi-query tasks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.batch import BatchQueryPlanner
from repro.cluster.driver import RunningTopKVector, merge_stats
from repro.cluster.engine import ExecutionEngine, WorkloadHints, choose_backend
from repro.cluster.planner import QueryPlanner
from repro.cluster.rdd import ProbeCache
from repro.cluster.scheduler import lpt_order
from repro.core.grid import Grid
from repro.core.rptrie import RPTrie
from repro.core.search import (
    PartitionProbe,
    SearchStats,
    TopKResult,
    local_search,
    local_search_multi,
)
from repro.repose import Repose, make_baseline
from repro.types import Trajectory, TrajectoryDataset

MEASURES = ["hausdorff", "frechet", "dtw", "erp", "edr", "lcss"]
SPAN = 10.0


def _clustered_trajectories(count: int, seed: int) -> list[Trajectory]:
    """Skewed data: most trajectories huddle in one hot corner."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(count):
        n = int(rng.integers(3, 18))
        if i % 4 == 0:
            start = rng.uniform(0.05 * SPAN, 0.95 * SPAN, 2)
        else:
            start = rng.uniform(0.05 * SPAN, 0.25 * SPAN, 2)
        steps = rng.normal(0, 0.02 * SPAN, (n - 1, 2))
        points = np.vstack([start, start + np.cumsum(steps, axis=0)])
        np.clip(points, 0.001, SPAN - 0.001, out=points)
        trajectories.append(Trajectory(points, traj_id=i))
    return trajectories


@pytest.fixture(scope="module")
def skewed_dataset() -> TrajectoryDataset:
    return TrajectoryDataset(
        name="skewed", trajectories=_clustered_trajectories(100, seed=5))


def _build(dataset, measure, **kwargs):
    kwargs.setdefault("delta", 0.4)
    kwargs.setdefault("num_partitions", 12)
    kwargs.setdefault("plan_options", {"wave_size": 3})
    return Repose.build(dataset, measure=measure, **kwargs)


class TestBatchBitIdentity:
    @pytest.mark.parametrize("name", MEASURES)
    def test_batch_equals_per_query_single_shot(self, skewed_dataset, name):
        """The acceptance property: top_k_batch(plan="waves") returns,
        per query, exactly what plan="single" returns alone — same
        items, same distances, same tie-breaks — for every measure."""
        engine = _build(skewed_dataset, name)
        queries = [skewed_dataset.trajectories[i] for i in (0, 1, 2, 17)]
        for k in (1, 7, 25):
            batch = engine.top_k_batch(queries, k, plan="waves")
            for query, result in zip(queries, batch.results):
                single = engine.top_k(query, k, plan="single")
                assert result.items == single.result.items

    def test_ties_at_global_kth_survive_cross_query_reuse(self):
        """Duplicate trajectories across partitions plus duplicate
        queries: cross-query thresholds must not drop the smaller-tid
        twin the single-shot merge keeps at the k-th boundary."""
        base = _clustered_trajectories(40, seed=9)
        twin_points = [(1.0, 1.0), (1.5, 1.2), (2.0, 1.1)]
        trajs = base + [Trajectory(twin_points, traj_id=200 + i)
                        for i in range(6)]
        dataset = TrajectoryDataset(name="twins", trajectories=trajs)
        engine = _build(dataset, "hausdorff", strategy="random",
                        num_partitions=8, plan_options={"wave_size": 2})
        queries = [Trajectory(twin_points, traj_id=999),
                   Trajectory(twin_points, traj_id=998),
                   dataset.trajectories[0]]
        for k in (2, 4, 6):
            batch = engine.top_k_batch(queries, k)
            for query, result in zip(queries, batch.results):
                single = engine.top_k(query, k, plan="single")
                assert result.items == single.result.items

    def test_batch_never_does_more_partition_work(self, skewed_dataset):
        """Grouping and cross-query reuse may only remove work: the
        batch dispatches at most as many (query, partition) searches —
        and strictly fewer tasks — than per-query waved execution."""
        engine = _build(skewed_dataset, "dtw")
        queries = [skewed_dataset.trajectories[i] for i in (1, 2, 5, 6)]
        per_query_tasks = 0
        per_query_exact = 0
        for query in queries:
            outcome = engine.top_k(query, 10, plan="waves")
            per_query_tasks += sum(len(w.partitions)
                                   for w in outcome.plan.waves)
            per_query_exact += outcome.result.stats.exact_refinements
        batch = engine.top_k_batch(queries, 10)
        assert batch.plan.tasks_dispatched < per_query_tasks
        assert batch.plan.partition_queries_dispatched <= per_query_tasks
        assert sum(r.stats.exact_refinements
                   for r in batch.results) <= per_query_exact
        # Affinity grouping found real sharing on the skewed batch.
        assert batch.plan.grouped_queries > batch.plan.tasks_dispatched

    def test_baselines_run_under_batch_plan(self, skewed_dataset):
        """Indexes without top_k_multi/probe/threshold capabilities
        still execute correctly (per-query loop inside the task)."""
        engine = make_baseline("ls", skewed_dataset, "hausdorff",
                               num_partitions=6)
        engine.build()
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 5, plan="waves")
        for query, result in zip(queries, batch.results):
            single = engine.top_k(query, 5, plan="single")
            assert result.items == single.result.items

    def test_sequential_plan_returns_batch_outcome(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        queries = skewed_dataset.trajectories[:2]
        batch = engine.top_k_batch(queries, 4, plan="single")
        assert batch.plan is None
        assert len(batch.results) == 2
        assert batch.simulated_seconds > 0

    def test_unknown_plan_rejected(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        with pytest.raises(ValueError):
            engine.top_k_batch(skewed_dataset.trajectories[:2], 3,
                               plan="spiral")


class TestMultiQueryLocalSearch:
    @pytest.mark.parametrize("name", MEASURES)
    def test_multi_matches_individual_searches(self, skewed_dataset, name):
        grid = Grid.fit(skewed_dataset.bounding_box(), 0.4)
        trajs = skewed_dataset.trajectories[:50]
        trie = RPTrie(grid, name).build(trajs)
        queries = [trajs[0], trajs[7], trajs[13]]
        solo = [local_search(trie, query, 8) for query in queries]
        dks = [float("inf"), solo[1].items[3][0], solo[2].items[0][0]]
        multi = local_search_multi(trie, queries, 8, dks=dks)
        seeded = [local_search(trie, query, 8, dk=dk)
                  for query, dk in zip(queries, dks)]
        for got, expected in zip(multi, seeded):
            assert got.items == expected.items
        assert multi[0].items == solo[0].items

    def test_shared_gather_view_is_transparent(self, skewed_dataset):
        from repro.core.search import _SharedGatherStore
        grid = Grid.fit(skewed_dataset.bounding_box(), 0.4)
        trajs = skewed_dataset.trajectories[:30]
        trie = RPTrie(grid, "hausdorff").build(trajs)
        shared = _SharedGatherStore(trie.store)
        tids = [t.traj_id for t in trajs[:8]]
        first = shared.gather(tids)
        again = shared.gather(tids)
        assert first[0] is again[0]  # memoized, not rebuilt
        direct = trie.store.gather(tids)
        np.testing.assert_array_equal(first[0], direct[0])
        np.testing.assert_array_equal(first[1], direct[1])
        # Delegation: non-gather attributes reach the wrapped store.
        assert shared.points_of(tids[0]) is trie.store.points_of(tids[0])


class TestRunningTopKVector:
    def _result(self, items, **stats):
        return TopKResult(items=items, stats=SearchStats(**stats))

    def test_per_query_folds_are_independent(self):
        vector = RunningTopKVector(2, k=2)
        vector.fold(0, [self._result([(1.0, 1), (2.0, 2)])])
        vector.fold(1, [self._result([(5.0, 5)])])
        assert vector.dk(0) == 2.0
        assert vector.dk(1) == float("inf")
        results = vector.results()
        assert results[0].items == [(1.0, 1), (2.0, 2)]
        assert results[1].items == [(5.0, 5)]

    def test_broadcast_vector_cross_tightens(self):
        vector = RunningTopKVector(3, k=1)
        vector.fold(0, [self._result([(1.0, 1)])])
        vector.fold(1, [self._result([(10.0, 2)])])
        # query 2 holds nothing yet: dk = inf.
        pairwise = np.array([[0.0, 2.0, 0.5],
                             [2.0, 0.0, 9.0],
                             [0.5, 9.0, 0.0]])
        thresholds, tightened = vector.broadcast_vector(pairwise)
        # q1: min(10, 1 + 2) = 3; q2: min(inf, 1 + 0.5) = 1.5.
        assert thresholds.tolist() == [1.0, 3.0, 1.5]
        assert tightened == 2
        # The merges themselves are untouched.
        assert vector.dk(1) == 10.0
        assert vector.dk(2) == float("inf")

    def test_broadcast_without_pairwise_is_identity(self):
        vector = RunningTopKVector(2, k=1)
        vector.fold(0, [self._result([(1.0, 1)])])
        thresholds, tightened = vector.broadcast_vector(None)
        assert thresholds.tolist() == [1.0, float("inf")]
        assert tightened == 0

    def test_stats_fold_field_generically_per_query(self):
        """merge_stats folding stays field-generic under multi-query
        tasks: every SearchStats field sums per query, independently."""
        vector = RunningTopKVector(2, k=3)
        vector.fold(0, [self._result([(1.0, 1)], nodes_visited=3,
                                     exact_refinements=2, nodes_pruned=1)])
        vector.fold(0, [self._result([(2.0, 2)], nodes_visited=4,
                                     exact_refinements=5)])
        vector.fold(1, [self._result([(3.0, 3)], distance_computations=7,
                                     leaf_refinements=2)])
        first, second = vector.results()
        assert first.stats == merge_stats(
            [SearchStats(nodes_visited=3, exact_refinements=2,
                         nodes_pruned=1),
             SearchStats(nodes_visited=4, exact_refinements=5)])
        assert second.stats.distance_computations == 7
        assert second.stats.leaf_refinements == 2
        assert second.stats.nodes_visited == 0


class _ScriptedIndex:
    """Planner-facing fake: scripted probe bounds and top-k items,
    recording every received dk."""

    supports_threshold = True

    def __init__(self, bound, items):
        self.bound = bound
        self.items = items
        self.seen_dks: list[float] = []

    def probe(self, query, dqp=None):
        return PartitionProbe(bound=self.bound,
                              child_bounds=(self.bound,), trajectories=1)

    def top_k(self, query, k, dk=float("inf"), **kwargs):
        self.seen_dks.append(dk)
        return TopKResult(items=[item for item in self.items
                                 if item[0] <= dk][:k])


class _ScriptedPart:
    def __init__(self, index):
        self.index = index


class TestBatchPlannerMechanics:
    def _make_task(self, rp, queries, kwargs_list):
        return lambda: [rp.index.top_k(query, 1, **kwargs)
                        for query, kwargs in zip(queries, kwargs_list)]

    def test_cross_query_threshold_reaches_later_waves(self):
        """A query that has found nothing still receives a finite
        threshold derived from its neighbour's results."""
        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.5, [(9.0, 8)]))]
        planner = BatchQueryPlanner(
            ExecutionEngine(), wave_size=1,
            query_distance=lambda a, b: 0.25)
        queries = ["qa", "qb"]
        results, _, report = planner.execute_batch(
            parts, queries, 1, [{}, {}], make_task=self._make_task)
        # Wave 2 broadcast: both queries hold dk=1.0 from partition 0,
        # and the cross bound 1.0 + 0.25 cannot beat it — but partition
        # 1's searches must have received the finite own-dk threshold.
        finite = [dk for dk in parts[1].index.seen_dks
                  if np.isfinite(dk)]
        assert len(finite) == 2
        # Both queries share each wave's partition: 2 grouped tasks
        # where per-query dispatch would have used 4.
        assert report.tasks_dispatched == 2
        assert report.grouped_queries == 4
        assert results[0].items == [(1.0, 7)]

    def test_cross_query_tightening_counted_and_used(self):
        # Partition 0 serves only query a (b's probe bound exceeds any
        # threshold it could derive... so give b an empty first hit):
        # a finds dk=1 in wave 1; b finds nothing (its partition-0
        # items all filtered by nothing — empty list).  Wave 2: b's own
        # dk is inf, the cross bound 1 + 0.5 = 1.5 must be broadcast.
        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.2, [(9.0, 8)]))]
        parts[0].index.items = [(1.0, 7)]

        class _EmptyFirst(_ScriptedIndex):
            def top_k(self, query, k, dk=float("inf"), **kwargs):
                self.seen_dks.append(dk)
                if query == "qb":
                    return TopKResult(items=[])
                return super().top_k(query, k, dk=dk, **kwargs)

        parts[0] = _ScriptedPart(_EmptyFirst(0.0, [(1.0, 7)]))
        planner = BatchQueryPlanner(
            ExecutionEngine(), wave_size=1,
            query_distance=lambda a, b: 0.5)
        results, _, report = planner.execute_batch(
            parts, ["qa", "qb"], 1, [{}, {}],
            make_task=self._make_task)
        assert report.cross_query_tightenings >= 1
        # qb's wave-2 search saw the cross-derived 1.5 threshold.
        assert any(dk == pytest.approx(1.5)
                   for dk in parts[1].index.seen_dks)

    def test_pairwise_skips_duplicates_and_respects_limit(self,
                                                          monkeypatch):
        """Query-to-query distances are only computed between distinct
        representatives, and not at all past CROSS_QUERY_LIMIT."""
        import repro.cluster.batch as batch_mod
        calls = []

        def distance(a, b):
            calls.append((a, b))
            return 0.5

        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.2, [(2.0, 8)]))]
        planner = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                    query_distance=distance)
        queries = [Trajectory([(0.0, 0.0)], traj_id=1),
                   Trajectory([(0.0, 0.0)], traj_id=2),   # duplicate
                   Trajectory([(3.0, 3.0)], traj_id=3)]
        _, _, report = planner.execute_batch(
            parts, queries, 1, [{}, {}, {}], make_task=self._make_task)
        assert report.queries_deduplicated == 1
        # Only the 2 representatives pair up: one distance, not three.
        assert len(calls) == 1
        calls.clear()
        monkeypatch.setattr(batch_mod, "CROSS_QUERY_LIMIT", 1)
        planner.execute_batch(parts, queries, 1, [{}, {}, {}],
                              make_task=self._make_task)
        assert calls == []  # over the limit: cross reuse disabled

    def test_per_query_wave_accounting(self, skewed_dataset):
        """Satellite: waves / threshold_broadcasts / partitions_skipped
        sum correctly per query onto each result's SearchStats."""
        engine = _build(skewed_dataset, "hausdorff")
        queries = [skewed_dataset.trajectories[i] for i in (0, 3)]
        batch = engine.top_k_batch(queries, 6)
        assert batch.plan is not None
        assert batch.plan.num_queries == 2
        for result, plan in zip(batch.results, batch.plan.per_query):
            stats = result.stats
            assert stats.waves == len(plan.waves)
            assert stats.threshold_broadcasts == plan.threshold_broadcasts
            assert stats.partitions_skipped == plan.partitions_skipped
            dispatched = [pid for w in plan.waves for pid in w.partitions]
            skipped = [pid for w in plan.waves for pid in w.skipped]
            # Every partition is dispatched or provably skipped, once.
            assert sorted(dispatched + skipped) == list(range(12))
        total_partitions = sum(len(w.partitions)
                               for plan in batch.plan.per_query
                               for w in plan.waves)
        assert batch.plan.partition_queries_dispatched == total_partitions
        assert batch.plan.grouped_queries == total_partitions


class TestProbeCache:
    def test_repeated_queries_hit_the_cache(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        cache = engine.context.probe_cache
        query = skewed_dataset.trajectories[0]
        engine.top_k(query, 4)
        misses = cache.misses
        assert cache.hits == 0
        engine.top_k(query, 4)
        assert cache.hits == misses  # every partition served cached
        assert cache.misses == misses

    def test_batch_reuses_single_query_probes(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        cache = engine.context.probe_cache
        queries = skewed_dataset.trajectories[:3]
        for query in queries:
            engine.top_k(query, 4)
        misses = cache.misses
        batch = engine.top_k_batch(queries, 4)
        assert cache.misses == misses  # no probe recomputed
        assert cache.hits >= misses
        for query, result in zip(queries, batch.results):
            assert result.items == engine.top_k(
                query, 4, plan="single").result.items

    def test_insert_invalidates_probes(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff",
                        num_partitions=4)
        cache = engine.context.probe_cache
        query = skewed_dataset.trajectories[0]
        engine.top_k(query, 4)
        epoch = cache.epoch
        engine.insert(Trajectory([(1.0, 1.0), (1.2, 1.1)], traj_id=5000))
        assert cache.epoch == epoch + 1
        hits = cache.hits
        engine.top_k(query, 4)
        assert cache.hits == hits  # stale probes were dropped
        # And the inserted trajectory is visible to batch queries.
        ids = set()
        batch = engine.top_k_batch([Trajectory([(1.0, 1.0), (1.2, 1.1)],
                                               traj_id=6000)], 1)
        ids.update(batch.results[0].ids())
        assert 5000 in ids

    def test_capacity_bounds_entries(self):
        cache = ProbeCache(capacity=2)
        cache.put(0, b"a", "p0")
        cache.put(1, b"a", "p1")
        cache.put(2, b"a", "p2")
        assert cache.get(0, b"a") is None  # evicted oldest
        assert cache.get(2, b"a") == "p2"

    def test_fingerprint_depends_on_query_and_dqp(self):
        query = Trajectory([(0.0, 0.0), (1.0, 1.0)], traj_id=1)
        other = Trajectory([(0.0, 0.0), (1.0, 2.0)], traj_id=1)
        fp1 = ProbeCache.fingerprint(query)
        fp2 = ProbeCache.fingerprint(other)
        fp3 = ProbeCache.fingerprint(query, np.array([1.0]))
        assert fp1 != fp2 and fp1 != fp3
        assert ProbeCache.fingerprint(query) == fp1
        assert ProbeCache.fingerprint("not a trajectory") is None


class TestSchedulerFeedback:
    def test_lpt_order_sorts_heaviest_first(self):
        assert lpt_order([1.0, 5.0, 3.0]) == [1, 2, 0]
        assert lpt_order([2.0, 2.0, 7.0]) == [2, 0, 1]  # ties: index order
        assert lpt_order([]) == []

    def test_single_query_waves_dispatch_heaviest_first(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        query = skewed_dataset.trajectories[1]
        outcome = engine.top_k(query, 6, plan="waves")
        plan = outcome.plan
        # Wave membership is still promise-cut: each wave's partitions
        # (dispatched + skipped) form a contiguous slice of the order.
        flat = []
        for wave in plan.waves:
            members = sorted(wave.partitions + wave.skipped,
                             key=plan.order.index)
            flat.extend(members)
        assert flat == plan.order

    def test_task_weight_estimates(self):
        probe = PartitionProbe(bound=0.5, child_bounds=(0.5, 1.0, 3.0),
                               trajectories=30)
        full = QueryPlanner.task_weight(probe, float("inf"))
        assert full == pytest.approx(30.0)
        partial = QueryPlanner.task_weight(probe, 1.5)
        assert partial == pytest.approx(30 * 2 / 3)
        assert QueryPlanner.task_weight(None, 1.0) == 0.0


class TestMultiQueryHints:
    def test_run_waves_accepts_per_wave_hint_overrides(self):
        engine = ExecutionEngine("auto")
        base = WorkloadHints(measure="hausdorff", partition_points=800,
                             queries_per_task=64.0)
        narrow = WorkloadHints(measure="hausdorff", partition_points=800,
                               queries_per_task=1.0)

        def waves():
            yield [lambda: 1, lambda: 2], narrow

        engine.run_waves(waves(), hints=base)
        # The per-wave override (width 1) keeps the dispatch serial
        # where the whole-batch estimate (width 64) would go threaded.
        assert engine.last_backend == "serial"
        engine.close()

    def test_queries_per_task_scales_cost_model(self):
        base = WorkloadHints(measure="hausdorff", partition_points=800,
                             num_tasks=8)
        assert choose_backend(base) == "serial"
        grouped = WorkloadHints(measure="hausdorff", partition_points=800,
                                num_tasks=8, queries_per_task=16)
        assert choose_backend(grouped) == "thread"

    def test_auto_engine_handles_batched_plan(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff", engine="auto")
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 5)
        serial = _build(skewed_dataset, "hausdorff")
        expected = serial.top_k_batch(queries, 5)
        assert [r.items for r in batch.results] == \
            [r.items for r in expected.results]
        engine.context.engine.close()
