"""The multi-query batch planner and its supporting machinery.

The load-bearing property: ``top_k_batch(plan="waves")`` — shared
(cached) probes, partition-affinity task grouping, per-query threshold
vectors with cross-query triangle-inequality reuse — must return
**bit-identical** per-query results to running each query alone under
``plan="single"``, for every measure.  Alongside that property live
unit tests for the pieces: the multi-query local search and its shared
gather view, the per-query running-merge vector and its cross-query
broadcast, the probe cache and its epoch invalidation, LPT wave
ordering, the multi-query workload hints, and the per-query
``SearchStats``/``PlanReport`` accounting (satellite: ``merge_stats``
field-generic folding under multi-query tasks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.batch import BatchPlanReport, BatchQueryPlanner
from repro.cluster.driver import RunningTopKVector, merge_stats
from repro.cluster.engine import ExecutionEngine, WorkloadHints, choose_backend
from repro.cluster.planner import QueryPlanner
from repro.cluster.rdd import ProbeCache
from repro.cluster.scheduler import lpt_order
from repro.core.grid import Grid
from repro.core.rptrie import RPTrie
from repro.core.search import (
    PartitionProbe,
    SearchStats,
    TopKResult,
    local_search,
    local_search_multi,
)
from repro.repose import Repose, make_baseline
from repro.types import Trajectory, TrajectoryDataset

MEASURES = ["hausdorff", "frechet", "dtw", "erp", "edr", "lcss"]
SPAN = 10.0


def _clustered_trajectories(count: int, seed: int) -> list[Trajectory]:
    """Skewed data: most trajectories huddle in one hot corner."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(count):
        n = int(rng.integers(3, 18))
        if i % 4 == 0:
            start = rng.uniform(0.05 * SPAN, 0.95 * SPAN, 2)
        else:
            start = rng.uniform(0.05 * SPAN, 0.25 * SPAN, 2)
        steps = rng.normal(0, 0.02 * SPAN, (n - 1, 2))
        points = np.vstack([start, start + np.cumsum(steps, axis=0)])
        np.clip(points, 0.001, SPAN - 0.001, out=points)
        trajectories.append(Trajectory(points, traj_id=i))
    return trajectories


@pytest.fixture(scope="module")
def skewed_dataset() -> TrajectoryDataset:
    return TrajectoryDataset(
        name="skewed", trajectories=_clustered_trajectories(100, seed=5))


def _build(dataset, measure, **kwargs):
    kwargs.setdefault("delta", 0.4)
    kwargs.setdefault("num_partitions", 12)
    kwargs.setdefault("plan_options", {"wave_size": 3})
    return Repose.build(dataset, measure=measure, **kwargs)


class TestBatchBitIdentity:
    @pytest.mark.parametrize("name", MEASURES)
    def test_batch_equals_per_query_single_shot(self, skewed_dataset, name):
        """The acceptance property: top_k_batch(plan="waves") returns,
        per query, exactly what plan="single" returns alone — same
        items, same distances, same tie-breaks — for every measure."""
        engine = _build(skewed_dataset, name)
        queries = [skewed_dataset.trajectories[i] for i in (0, 1, 2, 17)]
        for k in (1, 7, 25):
            batch = engine.top_k_batch(queries, k, plan="waves")
            for query, result in zip(queries, batch.results):
                single = engine.top_k(query, k, plan="single")
                assert result.items == single.result.items

    def test_ties_at_global_kth_survive_cross_query_reuse(self):
        """Duplicate trajectories across partitions plus duplicate
        queries: cross-query thresholds must not drop the smaller-tid
        twin the single-shot merge keeps at the k-th boundary."""
        base = _clustered_trajectories(40, seed=9)
        twin_points = [(1.0, 1.0), (1.5, 1.2), (2.0, 1.1)]
        trajs = base + [Trajectory(twin_points, traj_id=200 + i)
                        for i in range(6)]
        dataset = TrajectoryDataset(name="twins", trajectories=trajs)
        engine = _build(dataset, "hausdorff", strategy="random",
                        num_partitions=8, plan_options={"wave_size": 2})
        queries = [Trajectory(twin_points, traj_id=999),
                   Trajectory(twin_points, traj_id=998),
                   dataset.trajectories[0]]
        for k in (2, 4, 6):
            batch = engine.top_k_batch(queries, k)
            for query, result in zip(queries, batch.results):
                single = engine.top_k(query, k, plan="single")
                assert result.items == single.result.items

    def test_batch_never_does_more_partition_work(self, skewed_dataset):
        """Grouping and cross-query reuse may only remove work: the
        batch dispatches at most as many (query, partition) searches —
        and strictly fewer tasks — than per-query waved execution."""
        engine = _build(skewed_dataset, "dtw")
        queries = [skewed_dataset.trajectories[i] for i in (1, 2, 5, 6)]
        per_query_tasks = 0
        per_query_exact = 0
        for query in queries:
            outcome = engine.top_k(query, 10, plan="waves")
            per_query_tasks += sum(len(w.partitions)
                                   for w in outcome.plan.waves)
            per_query_exact += outcome.result.stats.exact_refinements
        batch = engine.top_k_batch(queries, 10)
        assert batch.plan.tasks_dispatched < per_query_tasks
        assert batch.plan.partition_queries_dispatched <= per_query_tasks
        assert sum(r.stats.exact_refinements
                   for r in batch.results) <= per_query_exact
        # Affinity grouping found real sharing on the skewed batch.
        assert batch.plan.grouped_queries > batch.plan.tasks_dispatched

    def test_baselines_run_under_batch_plan(self, skewed_dataset):
        """Indexes without top_k_multi/probe/threshold capabilities
        still execute correctly (per-query loop inside the task)."""
        engine = make_baseline("ls", skewed_dataset, "hausdorff",
                               num_partitions=6)
        engine.build()
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 5, plan="waves")
        for query, result in zip(queries, batch.results):
            single = engine.top_k(query, 5, plan="single")
            assert result.items == single.result.items

    def test_sequential_plan_returns_batch_outcome(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        queries = skewed_dataset.trajectories[:2]
        batch = engine.top_k_batch(queries, 4, plan="single")
        assert batch.plan is None
        assert len(batch.results) == 2
        assert batch.simulated_seconds > 0

    def test_unknown_plan_rejected(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        with pytest.raises(ValueError):
            engine.top_k_batch(skewed_dataset.trajectories[:2], 3,
                               plan="spiral")


class TestMultiQueryLocalSearch:
    @pytest.mark.parametrize("name", MEASURES)
    def test_multi_matches_individual_searches(self, skewed_dataset, name):
        grid = Grid.fit(skewed_dataset.bounding_box(), 0.4)
        trajs = skewed_dataset.trajectories[:50]
        trie = RPTrie(grid, name).build(trajs)
        queries = [trajs[0], trajs[7], trajs[13]]
        solo = [local_search(trie, query, 8) for query in queries]
        dks = [float("inf"), solo[1].items[3][0], solo[2].items[0][0]]
        multi = local_search_multi(trie, queries, 8, dks=dks)
        seeded = [local_search(trie, query, 8, dk=dk)
                  for query, dk in zip(queries, dks)]
        for got, expected in zip(multi, seeded):
            assert got.items == expected.items
        assert multi[0].items == solo[0].items

    def test_shared_gather_view_is_transparent(self, skewed_dataset):
        from repro.core.search import _SharedGatherStore
        grid = Grid.fit(skewed_dataset.bounding_box(), 0.4)
        trajs = skewed_dataset.trajectories[:30]
        trie = RPTrie(grid, "hausdorff").build(trajs)
        shared = _SharedGatherStore(trie.store)
        tids = [t.traj_id for t in trajs[:8]]
        first = shared.gather(tids)
        again = shared.gather(tids)
        assert first[0] is again[0]  # memoized, not rebuilt
        direct = trie.store.gather(tids)
        np.testing.assert_array_equal(first[0], direct[0])
        np.testing.assert_array_equal(first[1], direct[1])
        # Delegation: non-gather attributes reach the wrapped store.
        assert shared.points_of(tids[0]) is trie.store.points_of(tids[0])

    def test_release_group_evicts_oldest_finished_group(self):
        """Groups released while under budget stay eviction-eligible:
        once a later group pushes past the budget, finished groups are
        dropped oldest-first until back under it."""
        from repro.core.search import _SharedGatherStore

        class _FakeStore:
            def __init__(self):
                self.calls = 0

            def gather(self, tids, max_len=None):
                self.calls += 1
                return (np.zeros((len(tids), 4, 2)),
                        np.full(len(tids), 4))

        store = _FakeStore()
        shared = _SharedGatherStore(store, budget_elems=40)
        shared.begin_group("a")
        shared.gather([1, 2])              # 16 elems, under budget
        shared.release_group("a")          # queued, nothing evicted
        assert shared.hits == 0 and shared.misses == 1
        shared.begin_group("b")
        shared.gather([3, 4])
        shared.gather([5, 6])              # 48 elems total: over budget
        shared.release_group("b")          # evicts group a (oldest)
        assert store.calls == 3
        shared.gather([3, 4])              # b survived the eviction
        assert store.calls == 3 and shared.hits == 1
        shared.gather([1, 2])              # a was evicted: rebuilt
        assert store.calls == 4


class TestRunningTopKVector:
    def _result(self, items, **stats):
        return TopKResult(items=items, stats=SearchStats(**stats))

    def test_per_query_folds_are_independent(self):
        vector = RunningTopKVector(2, k=2)
        vector.fold(0, [self._result([(1.0, 1), (2.0, 2)])])
        vector.fold(1, [self._result([(5.0, 5)])])
        assert vector.dk(0) == 2.0
        assert vector.dk(1) == float("inf")
        results = vector.results()
        assert results[0].items == [(1.0, 1), (2.0, 2)]
        assert results[1].items == [(5.0, 5)]

    def test_broadcast_vector_cross_tightens(self):
        vector = RunningTopKVector(3, k=1)
        vector.fold(0, [self._result([(1.0, 1)])])
        vector.fold(1, [self._result([(10.0, 2)])])
        # query 2 holds nothing yet: dk = inf.
        pairwise = np.array([[0.0, 2.0, 0.5],
                             [2.0, 0.0, 9.0],
                             [0.5, 9.0, 0.0]])
        thresholds, tightened = vector.broadcast_vector(pairwise)
        # q1: min(10, 1 + 2) = 3; q2: min(inf, 1 + 0.5) = 1.5.
        assert thresholds.tolist() == [1.0, 3.0, 1.5]
        assert tightened == 2
        # The merges themselves are untouched.
        assert vector.dk(1) == 10.0
        assert vector.dk(2) == float("inf")

    def test_broadcast_without_pairwise_is_identity(self):
        vector = RunningTopKVector(2, k=1)
        vector.fold(0, [self._result([(1.0, 1)])])
        thresholds, tightened = vector.broadcast_vector(None)
        assert thresholds.tolist() == [1.0, float("inf")]
        assert tightened == 0

    def test_stats_fold_field_generically_per_query(self):
        """merge_stats folding stays field-generic under multi-query
        tasks: every SearchStats field sums per query, independently."""
        vector = RunningTopKVector(2, k=3)
        vector.fold(0, [self._result([(1.0, 1)], nodes_visited=3,
                                     exact_refinements=2, nodes_pruned=1)])
        vector.fold(0, [self._result([(2.0, 2)], nodes_visited=4,
                                     exact_refinements=5)])
        vector.fold(1, [self._result([(3.0, 3)], distance_computations=7,
                                     leaf_refinements=2)])
        first, second = vector.results()
        assert first.stats == merge_stats(
            [SearchStats(nodes_visited=3, exact_refinements=2,
                         nodes_pruned=1),
             SearchStats(nodes_visited=4, exact_refinements=5)])
        assert second.stats.distance_computations == 7
        assert second.stats.leaf_refinements == 2
        assert second.stats.nodes_visited == 0


class _ScriptedIndex:
    """Planner-facing fake: scripted probe bounds and top-k items,
    recording every received dk."""

    supports_threshold = True

    def __init__(self, bound, items):
        self.bound = bound
        self.items = items
        self.seen_dks: list[float] = []

    def probe(self, query, dqp=None):
        return PartitionProbe(bound=self.bound,
                              child_bounds=(self.bound,), trajectories=1)

    def top_k(self, query, k, dk=float("inf"), **kwargs):
        self.seen_dks.append(dk)
        return TopKResult(items=[item for item in self.items
                                 if item[0] <= dk][:k])


class _ScriptedPart:
    def __init__(self, index):
        self.index = index


class TestBatchPlannerMechanics:
    def _make_task(self, rp, queries, kwargs_list, shares=None):
        return lambda: [rp.index.top_k(query, 1, **kwargs)
                        for query, kwargs in zip(queries, kwargs_list)]

    def test_cross_query_threshold_reaches_later_waves(self):
        """A query that has found nothing still receives a finite
        threshold derived from its neighbour's results."""
        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.5, [(9.0, 8)]))]
        planner = BatchQueryPlanner(
            ExecutionEngine(), wave_size=1,
            query_distance=lambda a, b: 0.25)
        queries = ["qa", "qb"]
        results, _, report = planner.execute_batch(
            parts, queries, 1, [{}, {}], make_task=self._make_task)
        # Wave 2 broadcast: both queries hold dk=1.0 from partition 0,
        # and the cross bound 1.0 + 0.25 cannot beat it — but partition
        # 1's searches must have received the finite own-dk threshold.
        finite = [dk for dk in parts[1].index.seen_dks
                  if np.isfinite(dk)]
        assert len(finite) == 2
        # Both queries share each wave's partition: 2 grouped tasks
        # where per-query dispatch would have used 4.
        assert report.tasks_dispatched == 2
        assert report.grouped_queries == 4
        assert results[0].items == [(1.0, 7)]

    def test_cross_query_tightening_counted_and_used(self):
        # Partition 0 serves only query a (b's probe bound exceeds any
        # threshold it could derive... so give b an empty first hit):
        # a finds dk=1 in wave 1; b finds nothing (its partition-0
        # items all filtered by nothing — empty list).  Wave 2: b's own
        # dk is inf, the cross bound 1 + 0.5 = 1.5 must be broadcast.
        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.2, [(9.0, 8)]))]
        parts[0].index.items = [(1.0, 7)]

        class _EmptyFirst(_ScriptedIndex):
            def top_k(self, query, k, dk=float("inf"), **kwargs):
                self.seen_dks.append(dk)
                if query == "qb":
                    return TopKResult(items=[])
                return super().top_k(query, k, dk=dk, **kwargs)

        parts[0] = _ScriptedPart(_EmptyFirst(0.0, [(1.0, 7)]))
        planner = BatchQueryPlanner(
            ExecutionEngine(), wave_size=1,
            query_distance=lambda a, b: 0.5)
        results, _, report = planner.execute_batch(
            parts, ["qa", "qb"], 1, [{}, {}],
            make_task=self._make_task)
        assert report.cross_query_tightenings >= 1
        # qb's wave-2 search saw the cross-derived 1.5 threshold.
        assert any(dk == pytest.approx(1.5)
                   for dk in parts[1].index.seen_dks)

    def test_pairwise_skips_duplicates_and_respects_limit(self,
                                                          monkeypatch):
        """Query-to-query distances are only computed between distinct
        representatives, and the legacy greedy mode disables cross
        reuse outright past CROSS_QUERY_LIMIT while the indexed mode
        keeps it under a per-lookup budget."""
        import repro.cluster.batch as batch_mod
        calls = []

        def distance(a, b):
            calls.append((a, b))
            return 0.5

        parts = [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.2, [(2.0, 8)]))]
        queries = [Trajectory([(0.0, 0.0)], traj_id=1),
                   Trajectory([(0.0, 0.0)], traj_id=2),   # duplicate
                   Trajectory([(3.0, 3.0)], traj_id=3)]
        for query_index in (True, False):
            calls.clear()
            planner = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                        query_distance=distance,
                                        query_index=query_index)
            _, _, report = planner.execute_batch(
                parts, queries, 1, [{}, {}, {}],
                make_task=self._make_task)
            assert report.queries_deduplicated == 1
            # Only the 2 representatives pair up: one distance (the
            # index's single routing insert, or the one matrix cell).
            assert len(calls) == 1
            assert report.query_distance_calls == 1
        calls.clear()
        monkeypatch.setattr(batch_mod, "CROSS_QUERY_LIMIT", 1)
        legacy = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                   query_distance=distance,
                                   query_index=False)
        legacy.execute_batch(parts, queries, 1, [{}, {}, {}],
                             make_task=self._make_task)
        assert calls == []  # over the limit: cross reuse disabled
        indexed = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                    query_distance=distance)
        _, _, report = indexed.execute_batch(
            parts, queries, 1, [{}, {}, {}], make_task=self._make_task)
        # Indexed mode still couples the two representatives — the cap
        # survives only as a fresh-call budget per lookup, and the one
        # tree-build call stays within it.
        assert len(calls) == 1
        assert report.query_distance_calls == 1

    def test_per_query_wave_accounting(self, skewed_dataset):
        """Satellite: waves / threshold_broadcasts / partitions_skipped
        sum correctly per query onto each result's SearchStats."""
        engine = _build(skewed_dataset, "hausdorff")
        queries = [skewed_dataset.trajectories[i] for i in (0, 3)]
        batch = engine.top_k_batch(queries, 6)
        assert batch.plan is not None
        assert batch.plan.num_queries == 2
        for result, plan in zip(batch.results, batch.plan.per_query):
            stats = result.stats
            assert stats.waves == len(plan.waves)
            assert stats.threshold_broadcasts == plan.threshold_broadcasts
            assert stats.partitions_skipped == plan.partitions_skipped
            dispatched = [pid for w in plan.waves for pid in w.partitions]
            skipped = [pid for w in plan.waves for pid in w.skipped]
            # Every partition is dispatched or provably skipped, once.
            assert sorted(dispatched + skipped) == list(range(12))
        total_partitions = sum(len(w.partitions)
                               for plan in batch.plan.per_query
                               for w in plan.waves)
        assert batch.plan.partition_queries_dispatched == total_partitions
        assert batch.plan.grouped_queries == total_partitions


class TestProbeCache:
    def test_repeated_queries_hit_the_cache(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        cache = engine.context.probe_cache
        query = skewed_dataset.trajectories[0]
        engine.top_k(query, 4)
        misses = cache.misses
        assert cache.hits == 0
        engine.top_k(query, 4)
        assert cache.hits == misses  # every partition served cached
        assert cache.misses == misses

    def test_batch_reuses_single_query_probes(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        cache = engine.context.probe_cache
        queries = skewed_dataset.trajectories[:3]
        for query in queries:
            engine.top_k(query, 4)
        misses = cache.misses
        batch = engine.top_k_batch(queries, 4)
        assert cache.misses == misses  # no probe recomputed
        assert cache.hits >= misses
        for query, result in zip(queries, batch.results):
            assert result.items == engine.top_k(
                query, 4, plan="single").result.items

    def test_insert_invalidates_probes(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff",
                        num_partitions=4)
        cache = engine.context.probe_cache
        query = skewed_dataset.trajectories[0]
        engine.top_k(query, 4)
        epoch = cache.epoch
        engine.insert(Trajectory([(1.0, 1.0), (1.2, 1.1)], traj_id=5000))
        assert cache.epoch == epoch + 1
        hits = cache.hits
        engine.top_k(query, 4)
        assert cache.hits == hits  # stale probes were dropped
        # And the inserted trajectory is visible to batch queries.
        ids = set()
        batch = engine.top_k_batch([Trajectory([(1.0, 1.0), (1.2, 1.1)],
                                               traj_id=6000)], 1)
        ids.update(batch.results[0].ids())
        assert 5000 in ids

    def test_capacity_bounds_entries(self):
        cache = ProbeCache(capacity=2)
        cache.put(0, b"a", "p0")
        cache.put(1, b"a", "p1")
        cache.put(2, b"a", "p2")
        assert cache.get(0, b"a") is None  # evicted oldest
        assert cache.get(2, b"a") == "p2"

    def test_fingerprint_depends_on_query_and_dqp(self):
        query = Trajectory([(0.0, 0.0), (1.0, 1.0)], traj_id=1)
        other = Trajectory([(0.0, 0.0), (1.0, 2.0)], traj_id=1)
        fp1 = ProbeCache.fingerprint(query)
        fp2 = ProbeCache.fingerprint(other)
        fp3 = ProbeCache.fingerprint(query, np.array([1.0]))
        assert fp1 != fp2 and fp1 != fp3
        assert ProbeCache.fingerprint(query) == fp1
        assert ProbeCache.fingerprint("not a trajectory") is None


class TestNearDuplicateSharing:
    def _jitter(self, rng, traj, scale, traj_id):
        points = traj.points + rng.normal(0.0, scale, traj.points.shape)
        return Trajectory(np.clip(points, 0.001, SPAN - 0.001),
                          traj_id=traj_id)

    @pytest.mark.parametrize("name", ["hausdorff", "dtw", "edr"])
    def test_share_groups_stay_bit_identical(self, skewed_dataset, name):
        """share_eps only shares plans and tensors — every member of a
        share group still gets its exact single-shot answer."""
        rng = np.random.default_rng(11)
        engine = _build(skewed_dataset, name)
        base = [skewed_dataset.trajectories[i] for i in (0, 5)]
        jittered = [self._jitter(rng, t, 1e-4, 700 + i)
                    for i, t in enumerate(base * 2)]
        queries = base + jittered + [skewed_dataset.trajectories[40]]
        batch = engine.top_k_batch(queries, 8, plan_options={
            "share_eps": 1.0})
        for query, result in zip(queries, batch.results):
            single = engine.top_k(query, 8, plan="single")
            assert result.items == single.result.items
        assert batch.plan.share_eps == 1.0
        assert batch.plan.share_groups >= 1
        assert batch.plan.queries_shared >= 2

    def test_members_adopt_rep_plan_without_probing(self, skewed_dataset):
        """Share-group members never touch the probe cache and reuse
        the representative's promise order and wave cut."""
        rng = np.random.default_rng(13)
        engine = _build(skewed_dataset, "hausdorff")
        base = skewed_dataset.trajectories[2]
        twin = self._jitter(rng, base, 1e-4, 801)
        batch = engine.top_k_batch([base, twin], 5,
                                   plan_options={"share_eps": 1.0})
        report = batch.plan
        assert report.queries_shared == 1
        # Only the representative probed: 12 partitions, 12 misses.
        assert report.probe_cache_misses == 12
        assert report.probe_cache_hits == 0
        rep_plan, member_plan = report.per_query
        assert member_plan.order == rep_plan.order
        assert member_plan.probe_cache_misses == 0
        # Metric measure: adopted bounds are the rep's, shifted down.
        assert all(mb <= rb for mb, rb in zip(member_plan.probe_bounds,
                                              rep_plan.probe_bounds))

    def test_adopted_probes_shift_metric_only(self):
        probe = PartitionProbe(bound=1.0, child_bounds=(1.0, 2.5),
                               trajectories=9)

        def distance(a, b):
            return 0.0

        metric = BatchQueryPlanner(ExecutionEngine(),
                                   query_distance=distance,
                                   share_distance=distance)
        adopted = metric._adopted_probes([probe, None], 0.4)
        assert adopted[0].bound == pytest.approx(0.6)
        assert adopted[0].child_bounds == (0.6, 2.1)
        assert adopted[0].trajectories == 9
        assert adopted[1] is None
        # Shifts never go negative.
        floor = metric._adopted_probes([probe], 3.0)[0]
        assert floor.bound == 0.0 and floor.child_bounds == (0.0, 0.0)
        # Without a metric the adopted probes carry no skipping power.
        loose = BatchQueryPlanner(ExecutionEngine())
        assert loose._adopted_probes([probe, None], 0.1) == [None, None]

    def test_mismatched_share_distance_never_shifts_or_seeds(self):
        """A clustering distance that is not the metric distance must
        forfeit bound shifting and pairwise seeding — its values
        certify nothing under the triangle inequality."""
        probe = PartitionProbe(bound=1.0, child_bounds=(1.0,),
                               trajectories=3)
        planner = BatchQueryPlanner(ExecutionEngine(),
                                    query_distance=lambda a, b: 9.0,
                                    share_distance=lambda a, b: 0.0)
        assert not planner._share_distance_is_metric
        assert planner._adopted_probes([probe], 0.5) == [None]
        # Bound-method equality still qualifies (drivers return a
        # fresh bound method per call).
        from repro.distances import get_measure
        measure = get_measure("hausdorff")
        same = BatchQueryPlanner(ExecutionEngine(),
                                 query_distance=measure.distance,
                                 share_distance=measure.distance)
        assert same._share_distance_is_metric

    def test_share_clustering_is_greedy_and_deterministic(self):
        planner = BatchQueryPlanner(
            ExecutionEngine(), share_eps=1.0,
            share_distance=lambda a, b: abs(a.points[0, 0]
                                            - b.points[0, 0]))
        queries = [Trajectory([(x, 0.0)], traj_id=i)
                   for i, x in enumerate([0.0, 0.5, 5.0, 0.9, 5.8])]
        report = BatchPlanReport()
        rep_of, dist, _ = planner._share_clusters(
            queries, list(range(5)), report)
        assert rep_of == {0: 0, 1: 0, 2: 2, 3: 0, 4: 2}
        assert dist[1] == pytest.approx(0.5)
        assert dist[4] == pytest.approx(0.8)
        assert report.share_groups == 2
        assert report.queries_shared == 3

    def test_share_clustering_caps_representative_comparisons(
            self, monkeypatch):
        """Driver-side clustering cost is bounded: each query compares
        against at most CROSS_QUERY_LIMIT representatives."""
        import repro.cluster.batch as batch_mod
        monkeypatch.setattr(batch_mod, "CROSS_QUERY_LIMIT", 2)
        calls = []

        def distance(a, b):
            calls.append((a, b))
            return 100.0  # nobody clusters: representative list grows

        planner = BatchQueryPlanner(ExecutionEngine(), share_eps=0.1,
                                    share_distance=distance)
        queries = [Trajectory([(float(i), 0.0)], traj_id=i)
                   for i in range(6)]
        report = BatchPlanReport()
        rep_of, _, _ = planner._share_clusters(queries, list(range(6)),
                                               report)
        assert all(rep_of[i] == i for i in range(6))
        # Uncapped this would be 0+1+2+3+4+5 = 15 comparisons.
        assert len(calls) == 0 + 1 + 2 + 2 + 2 + 2

    def test_share_eps_inert_without_share_distance(self, skewed_dataset):
        """A driver that supplies no clustering distance (the base
        DistributedTopK) silently ignores share_eps."""
        engine = make_baseline("ls", skewed_dataset, "hausdorff",
                               num_partitions=4)
        engine.build()
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 4,
                                   plan_options={"share_eps": 100.0})
        assert batch.plan.share_groups == 0
        assert batch.plan.queries_shared == 0
        for query, result in zip(queries, batch.results):
            assert result.items == engine.top_k(
                query, 4, plan="single").result.items


class TestSampledBounds:
    def test_sampled_bound_tightens_non_metric_batches(self,
                                                       skewed_dataset):
        """DTW batches (no triangle inequality) still cross-tighten:
        the sampled banded bound produces finite sibling thresholds."""
        rng = np.random.default_rng(17)
        engine = _build(skewed_dataset, "dtw")
        base = [skewed_dataset.trajectories[i] for i in (0, 4, 8)]
        jittered = [Trajectory(t.points + rng.normal(0, 1e-3,
                                                     t.points.shape),
                               traj_id=900 + i)
                    for i, t in enumerate(base)]
        queries = base + jittered
        tightened = engine.top_k_batch(queries, 6, plan_options={
            "share_eps": 1.0})
        assert tightened.plan.sampled_tightenings > 0
        assert tightened.plan.cross_query_tightenings == 0  # non-metric
        for query, result in zip(queries, tightened.results):
            assert result.items == engine.top_k(
                query, 6, plan="single").result.items

    def test_disabled_sampled_bound_is_a_noop_for_non_metric(
            self, skewed_dataset):
        """Boundary: with sample_size=0 a non-metric batch simply runs
        with per-query thresholds — no error, no cross coupling."""
        engine = _build(skewed_dataset, "dtw")
        queries = [skewed_dataset.trajectories[i] for i in (0, 3, 7)]
        batch = engine.top_k_batch(queries, 5,
                                   plan_options={"sample_size": 0})
        assert batch.plan.sampled_tightenings == 0
        assert batch.plan.cross_query_tightenings == 0
        for query, result in zip(queries, batch.results):
            assert result.items == engine.top_k(
                query, 5, plan="single").result.items

    def test_small_sample_size_is_raised_to_k_not_disabled(self):
        """A configured sample_size below k is clamped up to k (only 0
        disables the bound, as documented)."""
        planner = BatchQueryPlanner(ExecutionEngine(),
                                    sampled_bound=lambda a, b: 1.0,
                                    sample_size=3)
        merges = RunningTopKVector(1, k=5)
        merges.fold(0, [TopKResult(items=[(0.1, 1), (0.2, 2), (0.3, 3),
                                          (0.4, 4), (0.5, 5)])])
        lookup = {tid: np.zeros((1, 2)) for tid in (1, 2, 3, 4, 5)}
        queries = [Trajectory([(0.0, 0.0)], traj_id=1)]
        bounds = planner._sampled_bounds(queries, [0], 5, merges, lookup)
        assert bounds is not None and bounds[0] == pytest.approx(1.0)
        # With fewer than k distinct candidates found, no bound exists.
        sparse = RunningTopKVector(1, k=5)
        sparse.fold(0, [TopKResult(items=[(0.1, 1), (0.2, 2)])])
        assert planner._sampled_bounds(queries, [0], 5, sparse,
                                       lookup) is None
        # sample_size=0 is the only off switch.
        off = BatchQueryPlanner(ExecutionEngine(),
                                sampled_bound=lambda a, b: 1.0,
                                sample_size=0)
        assert off._sampled_bounds(queries, [0], 5, merges,
                                   lookup) is None

    def test_sampled_bounds_take_kth_smallest_upper_bound(self):
        queries = [Trajectory([(0.0, 0.0)], traj_id=1)]
        planner = BatchQueryPlanner(
            ExecutionEngine(),
            sampled_bound=lambda a, b: float(b[0, 0]))
        merges = RunningTopKVector(1, k=2)
        merges.fold(0, [TopKResult(items=[(1.0, 10), (2.0, 11),
                                          (3.0, 12)])])
        lookup = {10: np.array([[7.0, 0.0]]),
                  11: np.array([[5.0, 0.0]]),
                  12: np.array([[9.0, 0.0]])}
        bounds = planner._sampled_bounds(queries, [0], 2, merges, lookup)
        # Upper bounds 7, 5, 9 -> 2nd smallest is 7.
        assert bounds[0] == pytest.approx(7.0)

    def test_broadcast_vector_folds_external_bounds(self):
        vector = RunningTopKVector(2, k=1)
        vector.fold(0, [TopKResult(items=[(4.0, 1)])])
        bounds = np.array([2.0, 3.5])
        thresholds, tightened = vector.broadcast_vector(None,
                                                        bounds=bounds)
        assert thresholds.tolist() == [2.0, 3.5]
        assert tightened == 0  # pairwise tightenings only
        # The merges themselves stay untouched.
        assert vector.dk(0) == 4.0

    def test_sample_items_dedupes_and_ranks(self):
        vector = RunningTopKVector(2, k=3)
        vector.fold(0, [TopKResult(items=[(1.0, 5), (2.0, 6)])])
        vector.fold(1, [TopKResult(items=[(0.5, 6), (3.0, 7)])])
        assert vector.sample_items(10) == [(0.5, 6), (1.0, 5), (3.0, 7)]
        assert vector.sample_items(1) == [(0.5, 6)]


class TestRunningTopKVectorBoundaries:
    def _scripted_parts(self):
        return [_ScriptedPart(_ScriptedIndex(0.0, [(1.0, 7)])),
                _ScriptedPart(_ScriptedIndex(0.2, [(2.0, 8)]))]

    def _make_task(self, rp, queries, kwargs_list, shares=None):
        return lambda: [rp.index.top_k(query, 1, **kwargs)
                        for query, kwargs in zip(queries, kwargs_list)]

    def test_cross_query_cap_at_64_distinct_queries(self):
        """Boundary: the legacy greedy mode builds the pairwise matrix
        at exactly CROSS_QUERY_LIMIT (64) distinct queries and disables
        cross reuse at 65; the indexed mode keeps cross reuse alive
        past the cap with strictly fewer distance calls than the full
        matrix would need."""
        calls = []

        def distance(a, b):
            calls.append((a, b))
            return 0.25

        for count, expect_pairs in ((64, 64 * 63 // 2), (65, 0)):
            calls.clear()
            planner = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                        query_distance=distance,
                                        query_index=False)
            queries = [f"q{i}" for i in range(count)]
            results, _, report = planner.execute_batch(
                self._scripted_parts(), queries, 1,
                [{} for _ in queries], make_task=self._make_task)
            assert len(calls) == expect_pairs, count
            assert report.query_distance_calls == expect_pairs
            assert all(r.items == [(1.0, 7)] for r in results)
        # Lifted cap: at 65 queries the indexed mode still tightens —
        # only q0 finds anything in wave 1, so the other 64 queries
        # enter wave 2 with dk=inf and receive the finite cross bound
        # 1.0 + 0.25 — within the per-lookup fresh-call budget instead
        # of the all-pairs matrix (the lookups themselves ride on the
        # pair distances the tree build already cached).
        class _FirstOnly(_ScriptedIndex):
            def top_k(self, query, k, dk=float("inf"), **kwargs):
                self.seen_dks.append(dk)
                if query != "q0":
                    return TopKResult(items=[])
                return TopKResult(items=list(self.items))

        calls.clear()
        parts = [_ScriptedPart(_FirstOnly(0.0, [(1.0, 7)])),
                 _ScriptedPart(_ScriptedIndex(0.2, [(1.0, 7)]))]
        planner = BatchQueryPlanner(ExecutionEngine(), wave_size=1,
                                    query_distance=distance)
        queries = [f"q{i}" for i in range(65)]
        results, _, report = planner.execute_batch(
            parts, queries, 1,
            [{} for _ in queries], make_task=self._make_task)
        assert report.cross_query_tightenings == 64
        assert 0 < len(calls) < 65 * 64 // 2
        assert report.query_distance_calls == len(calls)
        # The 64 coupled searches saw the cross-derived 1.25 threshold.
        assert sum(dk == pytest.approx(1.25)
                   for dk in parts[1].index.seen_dks) == 64
        assert all(r.items == [(1.0, 7)] for r in results)

    def test_single_query_batch(self, skewed_dataset):
        """Boundary: a batch of one runs the full machinery (no
        pairwise, no sharing partner) and matches single-shot."""
        engine = _build(skewed_dataset, "hausdorff")
        query = skewed_dataset.trajectories[3]
        batch = engine.top_k_batch([query], 5, plan_options={
            "share_eps": 1.0})
        assert batch.plan.num_queries == 1
        assert batch.plan.cross_query_tightenings == 0
        assert batch.plan.share_groups == 0
        assert batch.results[0].items == engine.top_k(
            query, 5, plan="single").result.items

    def test_empty_vector_broadcast(self):
        vector = RunningTopKVector(0, k=3)
        thresholds, tightened = vector.broadcast_vector(None)
        assert thresholds.tolist() == [] and tightened == 0
        assert vector.results() == []


class TestProbeCacheEpochRegression:
    def test_insert_between_batches_invalidates_and_is_counted(
            self, skewed_dataset):
        """Regression: an insert() between two identical batches must
        drop every cached probe — the second batch re-probes (misses
        in its BatchPlanReport) instead of serving stale bounds, and
        its results reflect the mutated index."""
        engine = _build(skewed_dataset, "hausdorff", num_partitions=4)
        queries = [skewed_dataset.trajectories[i] for i in (0, 2)]

        first = engine.top_k_batch(queries, 4)
        assert first.plan.probe_cache_misses == 8  # 2 queries x 4 parts
        assert first.plan.probe_cache_hits == 0

        warm = engine.top_k_batch(queries, 4)
        assert warm.plan.probe_cache_hits == 8
        assert warm.plan.probe_cache_misses == 0

        epoch = engine.context.probe_cache.epoch
        probe = Trajectory(queries[0].points + 1e-4, traj_id=7000)
        engine.insert(probe)
        assert engine.context.probe_cache.epoch == epoch + 1

        cold = engine.top_k_batch(queries, 4)
        assert cold.plan.probe_cache_misses == 8  # the insert's miss
        assert cold.plan.probe_cache_hits == 0
        # And the re-probed batch sees the inserted trajectory.
        fresh = engine.top_k_batch([Trajectory(probe.points,
                                               traj_id=7001)], 1)
        assert fresh.results[0].ids() == [7000]
        for query, result in zip(queries, cold.results):
            assert result.items == engine.top_k(
                query, 4, plan="single").result.items


class TestScheduledBatchReport:
    def test_fifo_path_reports_through_batch_plan_report(
            self, skewed_dataset):
        """Satellite: top_k_batch_scheduled no longer bypasses
        BatchPlanReport — Section V-A accounting comes with it."""
        engine = _build(skewed_dataset, "hausdorff")
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch_scheduled(queries, 5)
        report = batch.plan
        assert report is not None and report.mode == "batch-fifo"
        assert report.num_queries == 3
        assert report.tasks_dispatched == 3 * 12
        assert report.grouped_queries == report.tasks_dispatched
        assert report.partition_queries_dispatched == 3 * 12
        assert report.partitions_skipped == 0
        assert report.queries_deduplicated == 0
        for plan, result in zip(report.per_query, batch.results):
            assert plan.mode == "batch-fifo"
            assert [w.partitions for w in plan.waves] == [list(range(12))]
            assert result.stats.waves == 1
            assert (plan.waves[0].exact_refinements
                    == result.stats.exact_refinements)
            assert plan.waves[0].dk_after == result.kth_distance()

    def test_plan_fifo_routes_to_scheduled(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        queries = skewed_dataset.trajectories[:2]
        batch = engine.top_k_batch(queries, 4, plan="fifo")
        assert batch.plan is not None and batch.plan.mode == "batch-fifo"
        for query, result in zip(queries, batch.results):
            assert result.items == engine.top_k(
                query, 4, plan="single").result.items

    def test_plan_fifo_rejects_plan_options(self, skewed_dataset):
        """The FIFO path shares nothing, so options that would be
        silently dropped are rejected (mirrors the CLI check)."""
        engine = _build(skewed_dataset, "hausdorff")
        with pytest.raises(ValueError, match="fifo"):
            engine.top_k_batch(skewed_dataset.trajectories[:2], 3,
                               plan="fifo",
                               plan_options={"share_eps": 1.0})


class TestSchedulerFeedback:
    def test_lpt_order_sorts_heaviest_first(self):
        assert lpt_order([1.0, 5.0, 3.0]) == [1, 2, 0]
        assert lpt_order([2.0, 2.0, 7.0]) == [2, 0, 1]  # ties: index order
        assert lpt_order([]) == []

    def test_single_query_waves_dispatch_heaviest_first(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff")
        query = skewed_dataset.trajectories[1]
        outcome = engine.top_k(query, 6, plan="waves")
        plan = outcome.plan
        # Wave membership is still promise-cut: each wave's partitions
        # (dispatched + skipped) form a contiguous slice of the order.
        flat = []
        for wave in plan.waves:
            members = sorted(wave.partitions + wave.skipped,
                             key=plan.order.index)
            flat.extend(members)
        assert flat == plan.order

    def test_task_weight_estimates(self):
        probe = PartitionProbe(bound=0.5, child_bounds=(0.5, 1.0, 3.0),
                               trajectories=30)
        full = QueryPlanner.task_weight(probe, float("inf"))
        assert full == pytest.approx(30.0)
        partial = QueryPlanner.task_weight(probe, 1.5)
        assert partial == pytest.approx(30 * 2 / 3)
        assert QueryPlanner.task_weight(None, 1.0) == 0.0


class TestMultiQueryHints:
    def test_run_waves_accepts_per_wave_hint_overrides(self):
        engine = ExecutionEngine("auto")
        base = WorkloadHints(measure="hausdorff", partition_points=800,
                             queries_per_task=64.0)
        narrow = WorkloadHints(measure="hausdorff", partition_points=800,
                               queries_per_task=1.0)

        def waves():
            yield [lambda: 1, lambda: 2], narrow

        engine.run_waves(waves(), hints=base)
        # The per-wave override (width 1) keeps the dispatch serial
        # where the whole-batch estimate (width 64) would go threaded.
        assert engine.last_backend == "serial"
        engine.close()

    def test_queries_per_task_scales_cost_model(self):
        base = WorkloadHints(measure="hausdorff", partition_points=800,
                             num_tasks=8)
        assert choose_backend(base) == "serial"
        grouped = WorkloadHints(measure="hausdorff", partition_points=800,
                                num_tasks=8, queries_per_task=16)
        assert choose_backend(grouped) == "thread"

    def test_auto_engine_handles_batched_plan(self, skewed_dataset):
        engine = _build(skewed_dataset, "hausdorff", engine="auto")
        queries = skewed_dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 5)
        serial = _build(skewed_dataset, "hausdorff")
        expected = serial.top_k_batch(queries, 5)
        assert [r.items for r in batch.results] == \
            [r.items for r in expected.results]
        engine.context.engine.close()
