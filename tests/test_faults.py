"""Fault-tolerant execution: retries, timeouts, speculation, degradation.

Engine-level tests drive :class:`~repro.cluster.engine.ExecutionEngine`
under a :class:`~repro.cluster.engine.FaultPolicy` with deterministic
flaky tasks; planner-level tests break one partition's local index and
assert queries degrade to flagged partial results instead of raising.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.cluster.engine import (
    ExecutionEngine,
    FaultPolicy,
    TaskOutcome,
    WorkloadHints,
    require_results,
)
from repro.exceptions import (
    PartialResultError,
    ReproError,
    TaskFailedError,
)
from repro.repose import Repose
from repro.testing import FaultInjector, InjectedFault
from repro.types import Trajectory, TrajectoryDataset

FAST = FaultPolicy(max_retries=2, backoff_seconds=0.001,
                   jitter_fraction=0.0)


class _Flaky:
    """Fails the first ``failures`` calls, then returns ``value``."""

    def __init__(self, value, failures=1, exc=RuntimeError):
        self.value = value
        self.failures = failures
        self.exc = exc
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call <= self.failures:
            raise self.exc(f"flaky failure {call}")
        return self.value


class _SlowFirst:
    """Sleeps ``slow`` seconds on the first call only, then is fast."""

    def __init__(self, value, slow):
        self.value = value
        self.slow = slow
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
            first = self.calls == 1
        if first:
            time.sleep(self.slow)
        return self.value


class _ExitUnlessPid:
    """Kills the worker process unless running in process ``safe_pid``.

    Picklable (module-level class, plain attributes), so it reaches
    real subprocess workers, where it ``os._exit``\\ s — but a retry on
    the driver's thread pool (same pid) returns normally.  That is
    exactly the engine's crash-retry contract.
    """

    def __init__(self, value, safe_pid):
        self.value = value
        self.safe_pid = safe_pid

    def __call__(self):
        if os.getpid() != self.safe_pid:
            os._exit(17)
        return self.value


class _Square:
    """Picklable square task."""

    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value * self.value


class TestFaultPolicy:
    def test_backoff_grows_and_is_deterministic(self):
        policy = FaultPolicy(backoff_seconds=0.1, backoff_multiplier=2.0,
                             jitter_fraction=0.25)
        first = policy.backoff_for(3, 1)
        second = policy.backoff_for(3, 2)
        assert first == policy.backoff_for(3, 1)  # deterministic
        assert 0.1 <= first <= 0.1 * 1.25
        assert 0.2 <= second <= 0.2 * 1.25
        # Different tasks de-synchronize via jitter.
        assert policy.backoff_for(3, 1) != policy.backoff_for(4, 1)

    def test_timeout_explicit_derived_and_absent(self):
        assert FaultPolicy(task_timeout=1.5).timeout_for(100.0) == 1.5
        derived = FaultPolicy(timeout_slack=4.0, min_timeout=0.5)
        assert derived.timeout_for(2.0) == 8.0
        assert derived.timeout_for(0.001) == 0.5  # floor
        assert derived.timeout_for(None) is None

    def test_speculation_threshold(self):
        off = FaultPolicy(speculate=False)
        assert off.speculation_after(1.0, 10.0) is None
        on = FaultPolicy(speculate=True, speculation_factor=3.0)
        assert on.speculation_after(2.0, None) == 6.0
        assert on.speculation_after(None, 10.0) == 5.0
        assert on.speculation_after(None, None) is None
        pinned = FaultPolicy(speculate=True, speculation_seconds=0.25)
        assert pinned.speculation_after(2.0, 10.0) == 0.25


class TestSupervisedRetries:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_transient_failures_are_retried(self, backend):
        engine = ExecutionEngine(backend, max_workers=2, fault_policy=FAST)
        tasks = [_Flaky(10, failures=0), _Flaky(20, failures=2),
                 _Flaky(30, failures=1)]
        outcomes, timings = engine.run(tasks)
        assert require_results(outcomes) == [10, 20, 30]
        assert [o.partition_id for o in outcomes] == [0, 1, 2]
        assert outcomes[0].retries == 0
        assert outcomes[1].retries == 2
        assert outcomes[2].retries == 1
        assert len(timings) == 3
        engine.close()

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_exhausted_retries_degrade_not_raise(self, backend):
        engine = ExecutionEngine(backend, max_workers=2, fault_policy=FAST)
        tasks = [_Flaky(1, failures=0), _Flaky(2, failures=99)]
        outcomes, _ = engine.run(tasks)
        assert outcomes[0].ok and outcomes[0].result == 1
        assert not outcomes[1].ok
        assert outcomes[1].failure.kind == "error"
        assert "flaky failure" in outcomes[1].failure.message
        assert outcomes[1].attempts == FAST.max_retries + 1
        with pytest.raises(TaskFailedError, match="partition 1"):
            require_results(outcomes)
        engine.close()

    def test_timeout_abandons_then_retry_wins(self):
        policy = FaultPolicy(max_retries=2, backoff_seconds=0.001,
                             jitter_fraction=0.0, task_timeout=0.15)
        engine = ExecutionEngine("thread", max_workers=4,
                                 fault_policy=policy)
        outcomes, _ = engine.run([_SlowFirst("late", slow=10.0)])
        assert outcomes[0].ok and outcomes[0].result == "late"
        assert outcomes[0].timeouts >= 1
        assert outcomes[0].retries >= 1
        engine.close()

    def test_all_attempts_time_out(self):
        policy = FaultPolicy(max_retries=1, backoff_seconds=0.001,
                             jitter_fraction=0.0, task_timeout=0.05)
        engine = ExecutionEngine("thread", max_workers=4,
                                 fault_policy=policy)

        def stubborn():
            time.sleep(0.5)
            return "never on time"

        outcomes, _ = engine.run([stubborn])
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "timeout"
        assert outcomes[0].timeouts == 2  # original + one retry
        engine.close()

    def test_straggler_late_success_is_accepted(self):
        # The timed-out original finishes before its retry does: its
        # result must be accepted (abandoned, not cancelled).
        policy = FaultPolicy(max_retries=5, backoff_seconds=5.0,
                             jitter_fraction=0.0, task_timeout=0.05)
        engine = ExecutionEngine("thread", max_workers=2,
                                 fault_policy=policy)
        start = time.perf_counter()
        outcomes, _ = engine.run([_SlowFirst("straggler", slow=0.3)])
        elapsed = time.perf_counter() - start
        assert outcomes[0].ok and outcomes[0].result == "straggler"
        assert outcomes[0].timeouts >= 1
        # Well before the 5 s retry backoff would have fired.
        assert elapsed < 3.0
        engine.close()

    def test_speculative_duplicate_wins(self):
        policy = FaultPolicy(max_retries=2, backoff_seconds=0.001,
                             speculate=True, speculation_seconds=0.05)
        engine = ExecutionEngine("thread", max_workers=4,
                                 fault_policy=policy)
        outcomes, _ = engine.run([_SlowFirst("spec", slow=5.0)])
        assert outcomes[0].ok and outcomes[0].result == "spec"
        assert outcomes[0].speculative == 1
        assert outcomes[0].speculative_win
        # Speculation does not consume the retry budget.
        assert outcomes[0].retries == 0
        engine.close()

    def test_thread_task_error_types_are_not_pickle_failures(self):
        # AttributeError/TypeError raised by the task itself on the
        # thread pool must consume the retry budget and terminate —
        # never loop as misdiagnosed pickling failures.
        engine = ExecutionEngine("thread", max_workers=2, fault_policy=FAST)
        tasks = [_Flaky(1, failures=99, exc=AttributeError),
                 _Flaky(2, failures=99, exc=TypeError)]
        outcomes, _ = engine.run(tasks)
        assert not outcomes[0].ok and not outcomes[1].ok
        assert outcomes[0].attempts == FAST.max_retries + 1
        assert outcomes[1].attempts == FAST.max_retries + 1
        engine.close()

    def test_empty_task_list(self):
        engine = ExecutionEngine("thread", fault_policy=FAST)
        outcomes, timings = engine.run([])
        assert outcomes == [] and timings == []
        engine.close()


class TestProcessFaults:
    def test_broken_pool_disposed_and_rebuilt_without_policy(self):
        # Satellite regression: a worker death must not poison the
        # persistent pool for the next query on the same engine.
        engine = ExecutionEngine("process", max_workers=2)
        with pytest.raises(TaskFailedError, match="rebuilt"):
            engine.run([_ExitUnlessPid(1, safe_pid=-1)])
        assert engine._process_pool is None
        outcomes, _ = engine.run([_Square(3), _Square(4)])
        assert require_results(outcomes) == [9, 16]
        engine.close()

    def test_crash_retries_on_thread_pool_with_policy(self):
        engine = ExecutionEngine("process", max_workers=2,
                                 fault_policy=FAST)
        tasks = [_ExitUnlessPid("ok", safe_pid=os.getpid()), _Square(5)]
        outcomes, _ = engine.run(tasks)
        assert require_results(outcomes) == ["ok", 25]
        assert outcomes[0].failure is None
        assert engine.last_backend == "mixed"
        # The engine stays usable afterwards.
        again, _ = engine.run([_Square(2), _Square(3)])
        assert require_results(again) == [4, 9]
        engine.close()

    def test_unpicklable_tasks_redispatch_without_budget(self):
        engine = ExecutionEngine("process", max_workers=2,
                                 fault_policy=FaultPolicy(
                                     max_retries=0, backoff_seconds=0.001))
        value = 21
        outcomes, _ = engine.run([lambda: value * 2, lambda: value + 1])
        assert require_results(outcomes) == [42, 22]
        # Redispatch after the pickling failure consumed no retries
        # even though the budget was zero.
        assert all(o.ok for o in outcomes)
        engine.close()


class TestEngineLifecycle:
    def test_close_is_idempotent(self):
        engine = ExecutionEngine("thread", max_workers=2)
        engine.run([lambda: 1])
        engine.close()
        engine.close()  # second close is a no-op
        assert engine._thread_pool is None

    def test_run_after_close_raises_repro_error(self):
        engine = ExecutionEngine("thread", max_workers=2)
        engine.close()
        with pytest.raises(ReproError, match="closed"):
            engine.run([lambda: 1])


class TestRunWavesEdgeCases:
    def test_empty_wave_mid_stream(self):
        engine = ExecutionEngine()
        outcomes, wave_timings = engine.run_waves(
            [[lambda: "a"], [], [lambda: "c"]])
        assert [o.result for o in outcomes] == ["a", "c"]
        assert [len(w) for w in wave_timings] == [1, 0, 1]

    def test_on_wave_raising_closes_producer(self):
        engine = ExecutionEngine()
        closed = []

        def waves():
            try:
                yield [lambda: 1]
                yield [lambda: 2]
            finally:
                closed.append(True)

        def on_wave(index, outcomes, timings):
            raise RuntimeError("driver fold failed")

        with pytest.raises(RuntimeError, match="driver fold failed"):
            engine.run_waves(waves(), on_wave=on_wave)
        assert closed == [True]
        # The engine itself is unaffected.
        outcomes, _ = engine.run([lambda: 7])
        assert outcomes[0].result == 7

    def test_fault_injected_waves_preserve_order(self):
        injector = FaultInjector(seed=5, rate=0.6, kinds=("raise", "delay"),
                                 delay_seconds=0.005)
        engine = ExecutionEngine("thread", max_workers=4,
                                 fault_policy=FAST)
        injector.install(engine)
        waves = [[(lambda v=10 * w + i: v) for i in range(4)]
                 for w in range(3)]
        outcomes, wave_timings = engine.run_waves(waves)
        assert [o.result for o in outcomes] == [
            10 * w + i for w in range(3) for i in range(4)]
        assert all(o.ok for o in outcomes)
        assert injector.total_injected > 0
        engine.close()


def _tiny_engine(**kwargs):
    rng = np.random.default_rng(11)
    dataset = TrajectoryDataset(name="faults", trajectories=[
        Trajectory(rng.uniform(0, 1, (int(rng.integers(4, 12)), 2)),
                   traj_id=i) for i in range(50)])
    return Repose.build(dataset, measure="hausdorff", num_partitions=4,
                        **kwargs)


class _AlwaysBroken:
    """Local-index stand-in whose every search raises."""

    def __init__(self, index):
        self._index = index
        self.supports_threshold = index.supports_threshold

    def probe(self, query, dqp=None):
        return self._index.probe(query, dqp=dqp)

    def top_k(self, *args, **kwargs):
        raise RuntimeError("partition storage lost")

    def top_k_multi(self, *args, **kwargs):
        raise RuntimeError("partition storage lost")

    def range_query(self, *args, **kwargs):
        raise RuntimeError("partition storage lost")


class TestGracefulDegradation:
    def test_partition_loss_yields_flagged_partial_top_k(self):
        engine = _tiny_engine(
            fault_policy=FaultPolicy(max_retries=0, backoff_seconds=0.001))
        engine._parts[0].index = _AlwaysBroken(engine._parts[0].index)
        query = engine.dataset.trajectories[1]
        outcome = engine.top_k(query, 5)
        assert not outcome.complete
        assert outcome.failed_partitions == [0]
        assert len(outcome.result.items) > 0
        # The planner re-dispatched the partition into a retry wave
        # before giving up: it shows as failed in two waves.
        assert sum(len(w.failed) for w in outcome.plan.waves) >= 2
        with pytest.raises(PartialResultError, match=r"\[0\]"):
            outcome.require_complete()

    def test_partition_loss_yields_flagged_partial_batch(self):
        engine = _tiny_engine(
            fault_policy=FaultPolicy(max_retries=0, backoff_seconds=0.001))
        engine._parts[1].index = _AlwaysBroken(engine._parts[1].index)
        queries = engine.dataset.trajectories[:3]
        batch = engine.top_k_batch(queries, 5)
        assert not batch.complete
        assert any(1 in failed for failed in batch.failed_partitions)
        assert all(len(r.items) > 0 for r in batch.results)
        with pytest.raises(PartialResultError):
            batch.require_complete()

    def test_exactness_verdict_respects_probe_bounds(self):
        # A failed partition whose probe bound cannot rule it out makes
        # the partial result best-effort, never silently "exact".
        engine = _tiny_engine(
            fault_policy=FaultPolicy(max_retries=0, backoff_seconds=0.001))
        engine._parts[0].index = _AlwaysBroken(engine._parts[0].index)
        # A query from partition 0's own data: its bound is ~0, below
        # any finite dk, so exactness cannot be certified.
        query = engine._parts[0].trajectories[0]
        outcome = engine.top_k(query, 3)
        if not outcome.complete:
            assert not outcome.exact

    def test_transient_faults_recover_bit_identical(self):
        baseline = _tiny_engine()
        engine = _tiny_engine(fault_policy=FAST, engine="thread")
        injector = FaultInjector(seed=3, rate=0.4, kinds=("raise",))
        injector.install(engine.context.engine)
        for qi in (0, 7, 23):
            query = engine.dataset.trajectories[qi]
            outcome = engine.top_k(query, 6)
            assert outcome.complete and outcome.exact
            expected = baseline.top_k(query, 6)
            assert outcome.result.items == expected.result.items
        assert injector.total_injected > 0


class TestPlanOptionValidation:
    def test_constructor_rejects_unknown_plan_options(self):
        rng = np.random.default_rng(1)
        dataset = TrajectoryDataset(name="opts", trajectories=[
            Trajectory(rng.uniform(0, 1, (5, 2)), traj_id=i)
            for i in range(10)])
        with pytest.raises(ValueError, match="wave_sizes"):
            Repose.build(dataset, measure="hausdorff", num_partitions=2,
                         plan_options={"wave_sizes": 3})

    def test_error_lists_supported_knobs(self):
        rng = np.random.default_rng(1)
        dataset = TrajectoryDataset(name="opts", trajectories=[
            Trajectory(rng.uniform(0, 1, (5, 2)), traj_id=i)
            for i in range(10)])
        with pytest.raises(ValueError, match="share_eps"):
            Repose.build(dataset, measure="hausdorff", num_partitions=2,
                         plan_options={"typo": 1})

    def test_batch_call_rejects_unknown_plan_options(self):
        engine = _tiny_engine()
        with pytest.raises(ValueError, match="sampl_size"):
            engine.top_k_batch(engine.dataset.trajectories[:2], 3,
                               plan_options={"sampl_size": 4})


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=9, rate=0.5, kinds=("raise",))
        b = FaultInjector(seed=9, rate=0.5, kinds=("raise",))
        fates_a = [a(lambda: None).kind for _ in range(50)]
        fates_b = [b(lambda: None).kind for _ in range(50)]
        assert fates_a == fates_b
        assert any(kind == "raise" for kind in fates_a)
        assert any(kind is None for kind in fates_a)

    def test_faults_fire_once_then_retries_succeed(self):
        injector = FaultInjector(seed=1, rate=1.0, kinds=("raise",))
        wrapped = injector(lambda: 42)
        with pytest.raises(InjectedFault):
            wrapped()
        assert wrapped() == 42  # the retry runs the real task

    def test_rejects_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError, match="segfault"):
            FaultInjector(kinds=("segfault",))
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(rate=1.5)
