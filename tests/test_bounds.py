"""Tests for the incremental lower bounds (Algorithm 1 and extensions).

The soundness invariants here are the heart of the paper's correctness:
``LBo <= LBt <= Dist(query, traj)`` for every trajectory in a leaf, and
``LBo`` monotonically non-decreasing along any root-to-leaf path.
"""

import numpy as np
import pytest

from repro.core.bounds import make_bound_computer
from repro.core.grid import Grid
from repro.core.reference import ReferenceEncoder, encoder_mode_for
from repro.distances import get_measure
from repro.exceptions import UnsupportedMeasureError
from repro.types import Trajectory

MEASURES = {
    "hausdorff": get_measure("hausdorff"),
    "frechet": get_measure("frechet"),
    "dtw": get_measure("dtw"),
    "lcss": get_measure("lcss", eps=0.4),
    "edr": get_measure("edr", eps=0.4),
    "erp": get_measure("erp"),
}


@pytest.fixture
def grid():
    return Grid(origin_x=0.0, origin_y=0.0, delta=0.5, resolution=16)


def _random_trajectories(count, seed, n_lo=4, n_hi=12):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        n = int(rng.integers(n_lo, n_hi))
        points = rng.uniform(0.01, 7.99, (n, 2))
        out.append(Trajectory(points, traj_id=i))
    return out


def _walk_bounds(computer, z_values, max_traj_len):
    """Extend the bound along a full reference path; return LBo list and
    final state."""
    state = computer.initial_state()
    bounds = []
    for z in z_values:
        state, lbo = computer.extend(state, z, max_traj_len)
        bounds.append(lbo)
    return bounds, state


@pytest.mark.parametrize("name", list(MEASURES))
class TestBoundSoundness:
    def test_leaf_bound_below_true_distance(self, grid, name):
        measure = MEASURES[name]
        encoder = ReferenceEncoder(grid, mode=encoder_mode_for(measure))
        trajectories = _random_trajectories(15, seed=1)
        query = _random_trajectories(1, seed=99)[0]
        computer = make_bound_computer(measure, grid, query.points)
        for traj in trajectories:
            ref = encoder.encode(traj)
            _, state = _walk_bounds(computer, ref.z_values, len(traj))
            if measure.name in ("hausdorff", "frechet"):
                dmax = measure.distance(traj.points,
                                        ref.reference_points(grid))
            else:
                dmax = 0.0
            lbt = computer.leaf_bound(state, dmax, len(ref))
            true = measure.distance(query, traj)
            assert lbt <= true + 1e-9, (
                f"{name}: LBt {lbt} exceeds true distance {true}")

    def test_lbo_below_true_distance(self, grid, name):
        measure = MEASURES[name]
        encoder = ReferenceEncoder(grid, mode=encoder_mode_for(measure))
        trajectories = _random_trajectories(15, seed=2)
        query = _random_trajectories(1, seed=98)[0]
        computer = make_bound_computer(measure, grid, query.points)
        for traj in trajectories:
            ref = encoder.encode(traj)
            bounds, _ = _walk_bounds(computer, ref.z_values, len(traj))
            true = measure.distance(query, traj)
            assert bounds[-1] <= true + 1e-9

    def test_lbo_monotone_along_path(self, grid, name):
        measure = MEASURES[name]
        encoder = ReferenceEncoder(grid, mode=encoder_mode_for(measure))
        query = _random_trajectories(1, seed=97)[0]
        computer = make_bound_computer(measure, grid, query.points)
        for traj in _random_trajectories(15, seed=3):
            ref = encoder.encode(traj)
            bounds, _ = _walk_bounds(computer, ref.z_values, len(traj))
            for earlier, later in zip(bounds, bounds[1:]):
                assert later >= earlier - 1e-9, (
                    f"{name}: LBo decreased along path: {bounds}")

    def test_leaf_bound_at_least_final_lbo(self, grid, name):
        measure = MEASURES[name]
        encoder = ReferenceEncoder(grid, mode=encoder_mode_for(measure))
        query = _random_trajectories(1, seed=96)[0]
        computer = make_bound_computer(measure, grid, query.points)
        for traj in _random_trajectories(15, seed=4):
            ref = encoder.encode(traj)
            bounds, state = _walk_bounds(computer, ref.z_values, len(traj))
            if measure.name in ("hausdorff", "frechet"):
                dmax = measure.distance(traj.points,
                                        ref.reference_points(grid))
            else:
                dmax = 0.0
            lbt = computer.leaf_bound(state, dmax, len(ref))
            assert lbt >= bounds[-1] - 1e-9

    def test_bounds_nonnegative(self, grid, name):
        measure = MEASURES[name]
        encoder = ReferenceEncoder(grid, mode=encoder_mode_for(measure))
        query = _random_trajectories(1, seed=95)[0]
        computer = make_bound_computer(measure, grid, query.points)
        for traj in _random_trajectories(10, seed=5):
            ref = encoder.encode(traj)
            bounds, _ = _walk_bounds(computer, ref.z_values, len(traj))
            assert all(b >= 0.0 for b in bounds)


class TestHausdorffIntermediate:
    """Algorithm 1: incremental == direct recomputation."""

    def test_incremental_matches_direct(self, grid):
        measure = MEASURES["hausdorff"]
        rng = np.random.default_rng(6)
        query = Trajectory(rng.uniform(0, 8, (6, 2)), traj_id=0)
        traj = Trajectory(rng.uniform(0, 8, (10, 2)), traj_id=1)
        encoder = ReferenceEncoder(grid, mode="collapse")
        ref = encoder.encode(traj)
        computer = make_bound_computer(measure, grid, query.points)
        _, state = _walk_bounds(computer, ref.z_values, len(traj))
        # Direct: DH(query, reference trajectory) from scratch.
        direct = measure.distance(query.points, ref.reference_points(grid))
        r, cmax = state
        assert max(float(r.max()), cmax) == pytest.approx(direct)

    def test_order_independence_of_state(self, grid):
        """Hausdorff bound state is identical under z-value permutation."""
        measure = MEASURES["hausdorff"]
        rng = np.random.default_rng(7)
        query = Trajectory(rng.uniform(0, 8, (5, 2)), traj_id=0)
        traj = Trajectory(rng.uniform(0, 8, (8, 2)), traj_id=1)
        ref = ReferenceEncoder(grid, mode="dedup").encode(traj)
        computer = make_bound_computer(measure, grid, query.points)
        _, state_fwd = _walk_bounds(computer, ref.z_values, len(traj))
        _, state_rev = _walk_bounds(computer, ref.z_values[::-1], len(traj))
        np.testing.assert_allclose(state_fwd[0], state_rev[0])
        assert state_fwd[1] == pytest.approx(state_rev[1])


class TestFrechetColumns:
    def test_final_column_equals_frechet_of_references(self, grid):
        measure = MEASURES["frechet"]
        rng = np.random.default_rng(8)
        query = Trajectory(rng.uniform(0, 8, (5, 2)), traj_id=0)
        traj = Trajectory(rng.uniform(0, 8, (9, 2)), traj_id=1)
        ref = ReferenceEncoder(grid, mode="collapse").encode(traj)
        computer = make_bound_computer(measure, grid, query.points)
        _, column = _walk_bounds(computer, ref.z_values, len(traj))
        direct = measure.distance(query.points, ref.reference_points(grid))
        assert float(column[-1]) == pytest.approx(direct)


class TestDTWCellCosts:
    def test_dtw_bound_uses_cell_not_center(self, grid):
        """The DTW LB must use d'(q, cell); centers would overestimate."""
        measure = MEASURES["dtw"]
        # Query point inside the trajectory's cell (delta = 0.5) but far
        # from the cell center.
        query = Trajectory([(0.45, 0.45)], traj_id=0)
        traj = Trajectory([(0.05, 0.05)], traj_id=1)
        ref = ReferenceEncoder(grid, mode="collapse").encode(traj)
        computer = make_bound_computer(measure, grid, query.points)
        bounds, state = _walk_bounds(computer, ref.z_values, 1)
        true = measure.distance(query, traj)
        lbt = computer.leaf_bound(state, 0.0, len(ref))
        assert lbt <= true + 1e-12
        # Same cell -> zero cell distance -> zero bound.
        assert bounds[0] == 0.0


class TestFactory:
    def test_unknown_measure_raises(self, grid):
        from dataclasses import replace
        fake = replace(get_measure("dtw"), name="mystery")
        with pytest.raises(UnsupportedMeasureError):
            make_bound_computer(fake, grid, np.zeros((1, 2)))
