"""Exactness of the vectorized batch refinement engine.

The batch path must return *bit-identical* results to the seed
per-trajectory early-abandoning loop (kept available behind
``batch_refine=False``) for every measure, including how equal
distances at the k-th boundary tie-break, on ragged and degenerate
inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.rptrie import RPTrie
from repro.core.search import ResultHeap, local_range_search, local_search
from repro.core.store import TrajectoryStore
from repro.core.succinct import SuccinctRPTrie
from repro.baselines.linear import LinearScanIndex
from repro.distances.base import get_measure
from repro.distances.batch import (
    batch_lower_bounds,
    candidate_lower_bounds,
    refine_range,
    refine_top_k,
)
from repro.distances.threshold import distance_with_threshold
from repro.types import BoundingBox, Trajectory

MEASURES = ["hausdorff", "frechet", "dtw", "erp", "edr", "lcss"]


def _random_walks(count: int, seed: int, min_len: int, max_len: int,
                  span: float = 8.0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(count):
        n = int(rng.integers(min_len, max_len))
        start = rng.uniform(0.1 * span, 0.9 * span, 2)
        steps = rng.normal(0, 0.04 * span, (n - 1, 2))
        points = np.vstack([start, start + np.cumsum(steps, axis=0)])
        np.clip(points, 0.001, span - 0.001, out=points)
        trajectories.append(Trajectory(points, traj_id=i))
    return trajectories


def degenerate_trajectories() -> list[Trajectory]:
    """Length-1, duplicate-point, duplicate-trajectory and ragged data."""
    trajs = _random_walks(24, seed=11, min_len=2, max_len=40)
    extra = [
        Trajectory([(1.0, 1.0)], traj_id=100),                  # single point
        Trajectory([(2.0, 2.0)], traj_id=101),                  # single point
        Trajectory([(3.0, 3.0)] * 6, traj_id=102),              # duplicates
        Trajectory([(3.0, 3.0)] * 6, traj_id=103),              # tie twin
        Trajectory([(3.0, 3.0)] * 6, traj_id=104),              # tie twin
        Trajectory(trajs[0].points, traj_id=105),               # exact copy
        Trajectory(trajs[0].points, traj_id=106),               # exact copy
        Trajectory([(0.001, 0.001), (7.9, 7.9)], traj_id=107),  # extreme span
    ]
    return trajs + extra


@pytest.fixture(scope="module")
def ragged() -> list[Trajectory]:
    return degenerate_trajectories()


@pytest.fixture(scope="module")
def ragged_grid() -> Grid:
    return Grid.fit(BoundingBox(0.0, 0.0, 8.0, 8.0), delta=0.5)


def assert_same_traversal(batch, legacy):
    """Same trie traversal and candidate flow for both refinement paths.

    ``exact_refinements`` is the one counter allowed to differ: the
    batch engine exists to perform *fewer* exact evaluations than the
    per-trajectory loop (which pays one thresholded full computation
    per candidate), so it is compared by inequality.
    """
    assert batch.stats.nodes_visited == legacy.stats.nodes_visited
    assert batch.stats.nodes_pruned == legacy.stats.nodes_pruned
    assert batch.stats.leaf_refinements == legacy.stats.leaf_refinements
    assert (batch.stats.distance_computations
            == legacy.stats.distance_computations)
    assert (batch.stats.exact_refinements
            <= legacy.stats.exact_refinements)


class TestSearchBitIdentical:
    @pytest.mark.parametrize("name", MEASURES)
    def test_top_k_matches_legacy_path(self, ragged, ragged_grid, name):
        trie = RPTrie(ragged_grid, name, pivot_groups=3).build(ragged)
        for qi in (0, 5, 100, 102, 107):
            query = trie.trajectory(qi)
            batch = local_search(trie, query, 8)
            legacy = local_search(trie, query, 8, batch_refine=False)
            assert batch.items == legacy.items
            assert_same_traversal(batch, legacy)

    @pytest.mark.parametrize("name", MEASURES)
    def test_range_matches_legacy_path(self, ragged, ragged_grid, name):
        trie = RPTrie(ragged_grid, name, pivot_groups=3).build(ragged)
        for qi in (3, 101, 104):
            query = trie.trajectory(qi)
            probe = local_search(trie, query, 6, batch_refine=False)
            radius = probe.items[-1][0]
            batch = local_range_search(trie, query, radius)
            legacy = local_range_search(trie, query, radius,
                                        batch_refine=False)
            assert batch.items == legacy.items
            assert_same_traversal(batch, legacy)

    @pytest.mark.parametrize("name", ["hausdorff", "dtw"])
    def test_succinct_trie_matches_legacy_path(self, ragged, ragged_grid,
                                               name):
        trie = RPTrie(ragged_grid, name, pivot_groups=3).build(ragged)
        frozen = SuccinctRPTrie(trie)
        query = ragged[7]
        batch = local_search(frozen, query, 10)
        legacy = local_search(frozen, query, 10, batch_refine=False)
        assert batch.items == legacy.items
        assert_same_traversal(batch, legacy)

    def test_tie_breaking_matches_with_duplicate_trajectories(
            self, ragged, ragged_grid):
        # k smaller than the number of equidistant twins: the winners
        # must be the same tids the sequential loop keeps.
        trie = RPTrie(ragged_grid, "hausdorff").build(ragged)
        query = Trajectory([(3.0, 3.0), (3.5, 3.0)], traj_id=999)
        batch = local_search(trie, query, 2)
        legacy = local_search(trie, query, 2, batch_refine=False)
        assert batch.items == legacy.items


class TestRefinerUnit:
    @pytest.mark.parametrize("name", MEASURES)
    def test_refine_heap_equals_sequential(self, ragged, name):
        measure = get_measure(name)
        store = TrajectoryStore(ragged)
        tids = [t.traj_id for t in ragged]
        query = ragged[4]
        for k in (1, 3, len(tids) + 5):
            batch_heap = ResultHeap(k)
            refine_top_k(measure, query.points, tids, store, batch_heap)
            seq_heap = ResultHeap(k)
            for tid in tids:
                dist = distance_with_threshold(
                    measure, query.points, store.points_of(tid), seq_heap.dk)
                seq_heap.offer(dist, tid)
            assert batch_heap.sorted_items() == seq_heap.sorted_items()

    @pytest.mark.parametrize("name", MEASURES)
    def test_empty_candidate_set(self, ragged, name):
        measure = get_measure(name)
        store = TrajectoryStore(ragged)
        heap = ResultHeap(3)
        refine_top_k(measure, ragged[0].points, [], store, heap)
        assert heap.sorted_items() == []
        assert refine_range(measure, ragged[0].points, [], store, 1.0) == []
        bounds, _ = candidate_lower_bounds(measure, ragged[0].points,
                                           store, [])
        assert bounds.shape == (0,)

    def test_bounds_never_exceed_exact_distance(self, ragged):
        store = TrajectoryStore(ragged)
        tids = [t.traj_id for t in ragged]
        query = ragged[9]
        for name in MEASURES:
            measure = get_measure(name)
            bounds, is_exact = candidate_lower_bounds(
                measure, query.points, store, tids)
            exact = np.array([measure.distance(query.points,
                                               store.points_of(tid))
                              for tid in tids])
            if is_exact:
                assert name == "hausdorff"
                np.testing.assert_array_equal(bounds, exact)
            else:
                assert (bounds <= exact + 1e-9).all(), name

    def test_batch_lower_bounds_on_padded_arrays(self, ragged):
        store = TrajectoryStore(ragged)
        tids = [t.traj_id for t in ragged][:10]
        padded, lengths = store.gather(tids)
        measure = get_measure("hausdorff")
        bounds, is_exact = batch_lower_bounds(
            measure, ragged[0].points, padded, lengths)
        assert is_exact
        assert bounds.shape == (10,)


class TestLinearScanBatched:
    @pytest.mark.parametrize("name", MEASURES)
    def test_batched_scan_matches_sequential(self, ragged, name):
        batched = LinearScanIndex(name).build(ragged)
        sequential = LinearScanIndex(name, batched=False).build(ragged)
        query = ragged[2]
        a = batched.top_k(query, 7)
        b = sequential.top_k(query, 7)
        assert a.items == b.items
        assert a.stats == b.stats

    def test_idless_trajectories_fall_back_to_sequential(self):
        # Trajectories without ids cannot live in the columnar store;
        # the scan must keep working as it did before the batch engine.
        trajs = [Trajectory([(float(i), 0.0), (float(i), 1.0)])
                 for i in range(5)]
        index = LinearScanIndex("hausdorff").build(trajs)
        result = index.top_k(trajs[0], 2)
        assert result.distances() == [0.0, 1.0]
