"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    BenchConfig,
    ExperimentHarness,
    format_series,
    format_table,
    make_workload,
    scaled_cardinality,
)
from repro.bench.harness import AlgorithmRun


class TestTables:
    def test_format_table_alignment(self):
        table = format_table("T", ["a", "bb"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        # All body rows align to the same width.
        assert len(lines[4]) == len(lines[5])

    def test_format_series_layout(self):
        text = format_series("F", "k", [1, 2], {"REPOSE": [0.5, 0.25]})
        assert "REPOSE" in text
        assert "0.5" in text and "0.25" in text

    def test_float_formatting(self):
        table = format_table("T", ["v"], [[0.000001], [12345.6], [0.5]])
        assert "1e-06" in table
        assert "1.23e+04" in table
        assert "0.5" in table


class TestConfig:
    def test_defaults(self):
        cfg = BenchConfig()
        assert cfg.cluster_spec.total_cores == 16
        assert cfg.k == 10

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_K", "33")
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
        cfg = BenchConfig.from_env()
        assert cfg.k == 33
        assert cfg.cluster_spec.num_workers == 2


class TestWorkloads:
    def test_scaled_cardinality(self):
        assert scaled_cardinality("t-drive", 0.001) == 356
        assert scaled_cardinality("rome", 1e-9) == 20  # floor

    def test_workload_uses_paper_delta(self):
        workload = make_workload("osm", "hausdorff", scale=1e-5,
                                 num_queries=1)
        assert workload.delta == 1.0

    def test_queries_come_from_dataset(self):
        workload = make_workload("sf", "hausdorff", scale=0.0005,
                                 num_queries=4)
        ids = set(workload.dataset.ids())
        assert all(q.traj_id in ids for q in workload.queries)


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        workload = make_workload("t-drive", "hausdorff", scale=0.0004,
                                 num_queries=2)
        return ExperimentHarness(workload, "hausdorff", num_partitions=4)

    def test_run_repose(self, harness):
        run = harness.run_algorithm("repose", k=5)
        assert run.supported
        assert run.query_seconds > 0
        assert run.index_bytes > 0
        assert len(run.per_query_seconds) == 2

    def test_unsupported_pair_reports_slash(self, harness):
        run = harness.run_algorithm("dita", k=5)  # DITA has no Hausdorff
        assert not run.supported
        assert run.display_qt == "/"

    def test_run_all_covers_algorithms(self, harness):
        runs = harness.run_all(k=3, algorithms=("repose", "ls"))
        assert set(runs) == {"repose", "ls"}
        # Identical result distances across algorithms (exactness).
        a = [tuple(round(d, 8) for d in ds)
             for ds in runs["repose"].result_distances]
        b = [tuple(round(d, 8) for d in ds)
             for ds in runs["ls"].result_distances]
        assert a == b

    def test_display_qt_formats_seconds(self):
        run = AlgorithmRun(algorithm="x", query_seconds=0.12345)
        assert run.display_qt == "0.1235"
