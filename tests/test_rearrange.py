"""Tests for z-value re-arrangement (greedy hitting set, Section III-C)."""

import pytest

from repro.core.reference import ReferenceTrajectory
from repro.core.rearrange import greedy_hitting_set_order, rearrange_dataset
from repro.core.rptrie import RPTrie
from repro.types import Trajectory


def _count_trie_nodes(ordered_refs):
    """Nodes of the trie induced by ordered z-value tuples ($ excluded)."""
    paths = set()
    for zs, _ in ordered_refs:
        for depth in range(1, len(zs) + 1):
            paths.add(zs[:depth])
    return len(paths)


class TestGreedyHittingSet:
    def test_paper_appendix_example(self):
        """Table X / Example 3: first-level children are 0011, 0100, 0101."""
        z_sets = [
            (frozenset({0b0001, 0b0011}), 1),
            (frozenset({0b0001, 0b0011, 0b0101}), 2),
            (frozenset({0b0010, 0b0011}), 3),
            (frozenset({0b0010, 0b0011, 0b0101}), 4),
            (frozenset({0b0011, 0b0101}), 5),
            (frozenset({0b0001, 0b0100}), 6),
            (frozenset({0b0010, 0b0100}), 7),
            (frozenset({0b0101, 0b0110}), 8),
        ]
        ordered = greedy_hitting_set_order(z_sets)
        first = {zs[0] for zs, _ in ordered}
        assert first == {0b0011, 0b0100, 0b0101}
        # Z1..Z5 all hang under 0011 (frequency 5).
        under_root = {tid for zs, tid in ordered if zs[0] == 0b0011}
        assert under_root == {1, 2, 3, 4, 5}

    def test_preserves_value_sets(self):
        z_sets = [(frozenset({1, 5, 9}), 0), (frozenset({5}), 1)]
        ordered = greedy_hitting_set_order(z_sets)
        by_tid = {tid: set(zs) for zs, tid in ordered}
        assert by_tid == {0: {1, 5, 9}, 1: {5}}

    def test_empty_input(self):
        assert greedy_hitting_set_order([]) == []

    def test_single_set(self):
        ordered = greedy_hitting_set_order([(frozenset({3, 1, 2}), 7)])
        assert len(ordered) == 1
        assert set(ordered[0][0]) == {1, 2, 3}

    def test_identical_sets_share_full_path(self):
        z_sets = [(frozenset({1, 2}), 0), (frozenset({1, 2}), 1)]
        ordered = greedy_hitting_set_order(z_sets)
        assert ordered[0][0] == ordered[1][0]

    def test_reduces_nodes_on_paper_fig3_example(self):
        """Fig. 3: tau_2 and tau_5 share a longer prefix after swapping."""
        tau2 = frozenset({0b000010, 0b000100, 0b001000, 0b010001, 0b011001})
        tau5 = frozenset({0b000010, 0b000100, 0b001000, 0b011000, 0b110000})
        naive = [(tuple(sorted(tau2, reverse=True)), 2),
                 (tuple(sorted(tau5, reverse=True)), 5)]
        ordered = greedy_hitting_set_order([(tau2, 2), (tau5, 5)])
        assert _count_trie_nodes(ordered) <= _count_trie_nodes(naive)
        # The three shared z-values form a shared prefix.
        a, b = (zs for zs, _ in ordered)
        assert a[:3] == b[:3]

    def test_never_worse_than_arbitrary_order(self):
        import numpy as np
        rng = np.random.default_rng(0)
        for trial in range(10):
            z_sets = []
            for tid in range(20):
                size = int(rng.integers(1, 6))
                z_sets.append(
                    (frozenset(int(v) for v in rng.integers(0, 12, size)), tid))
            ordered = greedy_hitting_set_order(z_sets)
            arbitrary = [(tuple(sorted(zs)), tid) for zs, tid in z_sets]
            assert _count_trie_nodes(ordered) <= _count_trie_nodes(arbitrary)


class TestRearrangeDataset:
    def test_same_ids_and_sets(self):
        refs = [ReferenceTrajectory(0, (4, 2, 7)),
                ReferenceTrajectory(1, (2, 9))]
        out = rearrange_dataset(refs)
        assert {r.traj_id for r in out} == {0, 1}
        by_id = {r.traj_id: set(r.z_values) for r in out}
        assert by_id[0] == {4, 2, 7}
        assert by_id[1] == {2, 9}

    def test_trie_shrinks_on_real_data(self, small_grid, small_trajectories):
        plain = RPTrie(small_grid, "hausdorff",
                       optimized=False).build(small_trajectories)
        optimized = RPTrie(small_grid, "hausdorff",
                           optimized=True).build(small_trajectories)
        assert optimized.node_count <= plain.node_count
