"""Tests for the columnar trajectory store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rptrie import RPTrie
from repro.core.store import TrajectoryStore
from repro.core.succinct import SuccinctRPTrie
from repro.types import Trajectory


def _trajs(specs) -> list[Trajectory]:
    return [Trajectory(points, traj_id=tid) for tid, points in specs]


@pytest.fixture
def store() -> TrajectoryStore:
    return TrajectoryStore(_trajs([
        (0, [(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]),
        (7, [(5.0, 5.0)]),
        (3, [(1.0, 2.0), (3.0, 4.0)]),
    ]))


class TestLayout:
    def test_columnar_arrays(self, store):
        tids, offsets, points = store.columnar()
        assert tids.tolist() == [0, 7, 3]
        assert offsets.tolist() == [0, 3, 4, 6]
        assert points.shape == (6, 2)
        assert store.total_points == 6

    def test_points_of_bit_identical(self, store):
        original = np.array([(1.0, 2.0), (3.0, 4.0)])
        np.testing.assert_array_equal(store.points_of(3), original)

    def test_lengths_and_membership(self, store):
        assert store.lengths([7, 0]).tolist() == [1, 3]
        assert 7 in store and 99 not in store
        assert len(store) == 3
        assert store.ids() == [0, 7, 3]

    def test_gather_pads_with_inf(self, store):
        padded, lengths = store.gather([7, 0])
        assert padded.shape == (2, 3, 2)
        assert lengths.tolist() == [1, 3]
        np.testing.assert_array_equal(padded[0, 0], [5.0, 5.0])
        assert np.isinf(padded[0, 1:]).all()
        assert np.isfinite(padded[1]).all()

    def test_gather_empty(self, store):
        padded, lengths = store.gather([])
        assert padded.shape == (0, 0, 2)
        assert lengths.shape == (0,)

    def test_memory_bytes_positive(self, store):
        assert store.memory_bytes() >= 6 * 2 * 8


class TestAppend:
    def test_append_consolidates_lazily(self, store):
        store.append(Trajectory([(9.0, 9.0), (8.0, 8.0)], traj_id=42))
        assert len(store) == 4
        tids, offsets, _ = store.columnar()
        assert tids.tolist() == [0, 7, 3, 42]
        assert offsets.tolist() == [0, 3, 4, 6, 8]
        padded, lengths = store.gather([42])
        np.testing.assert_array_equal(padded[0, :2],
                                      [[9.0, 9.0], [8.0, 8.0]])

    def test_duplicate_or_missing_id_rejected(self, store):
        with pytest.raises(ValueError):
            store.append(Trajectory([(0.0, 0.0)], traj_id=7))
        with pytest.raises(ValueError):
            store.append(Trajectory([(0.0, 0.0)]))


class TestDerivedColumns:
    def test_erp_masses_match_per_pair(self, store):
        gap = (1.0, -1.0)
        masses = store.erp_masses([0, 3], gap)
        for tid, mass in zip([0, 3], masses):
            pts = store.points_of(tid)
            expected = np.hypot(pts[:, 0] - gap[0], pts[:, 1] - gap[1]).sum()
            assert mass == expected  # bit-identical, not approx

    def test_mass_cache_invalidated_by_append(self, store):
        gap = (0.0, 0.0)
        before = store.erp_masses([7], gap)
        store.append(Trajectory([(1.0, 1.0)], traj_id=50))
        after = store.erp_masses([7, 50], gap)
        assert after[0] == before[0]
        assert after[1] == pytest.approx(np.sqrt(2.0))


class TestRoundtrip:
    def test_from_columnar_zero_copy(self, store):
        tids, offsets, points = store.columnar()
        clone = TrajectoryStore.from_columnar(tids, offsets, points)
        assert clone.ids() == store.ids()
        for tid in store.ids():
            np.testing.assert_array_equal(clone.points_of(tid),
                                          store.points_of(tid))


class TestTrieIntegration:
    def test_trie_builds_and_shares_store(self, small_grid,
                                          small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        assert len(trie.store) == len(small_trajectories)
        frozen = SuccinctRPTrie(trie)
        assert frozen.store is trie.store

    def test_insert_keeps_store_in_sync(self, small_grid,
                                        small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        new = Trajectory([(1.0, 1.0), (2.0, 2.0)], traj_id=777)
        trie.insert(new)
        assert 777 in trie.store
        np.testing.assert_array_equal(trie.store.points_of(777), new.points)
