"""Extra cross-checks for the vectorized distance kernels.

The vectorized implementations (min-plus scans, anti-diagonal sweep)
are compared against straightforward O(mn) loop references on random
inputs, including degenerate shapes.
"""

import numpy as np
import pytest

from repro.distances import (
    dtw_distance,
    edr_distance,
    erp_distance,
    frechet_distance,
    lcss_similarity,
)
from repro.distances.matrix import point_distance_matrix


def _dtw_loop(a, b):
    dm = point_distance_matrix(a, b)
    m, n = dm.shape
    f = np.full((m + 1, n + 1), np.inf)
    f[0, 0] = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            f[i, j] = dm[i - 1, j - 1] + min(f[i - 1, j - 1],
                                             f[i - 1, j], f[i, j - 1])
    return float(f[m, n])


def _erp_loop(a, b, gap=(0.0, 0.0)):
    g = np.asarray(gap)
    ga = np.hypot(a[:, 0] - g[0], a[:, 1] - g[1])
    gb = np.hypot(b[:, 0] - g[0], b[:, 1] - g[1])
    dm = point_distance_matrix(a, b)
    m, n = dm.shape
    f = np.zeros((m + 1, n + 1))
    f[1:, 0] = np.cumsum(ga)
    f[0, 1:] = np.cumsum(gb)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            f[i, j] = min(f[i - 1, j - 1] + dm[i - 1, j - 1],
                          f[i - 1, j] + ga[i - 1],
                          f[i, j - 1] + gb[j - 1])
    return float(f[m, n])


def _edr_loop(a, b, eps):
    m, n = len(a), len(b)
    f = np.zeros((m + 1, n + 1))
    f[:, 0] = np.arange(m + 1)
    f[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            match = (abs(a[i - 1, 0] - b[j - 1, 0]) <= eps
                     and abs(a[i - 1, 1] - b[j - 1, 1]) <= eps)
            f[i, j] = min(f[i - 1, j - 1] + (0 if match else 1),
                          f[i - 1, j] + 1, f[i, j - 1] + 1)
    return float(f[m, n])


def _lcss_loop(a, b, eps):
    m, n = len(a), len(b)
    f = np.zeros((m + 1, n + 1), dtype=int)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            match = (abs(a[i - 1, 0] - b[j - 1, 0]) <= eps
                     and abs(a[i - 1, 1] - b[j - 1, 1]) <= eps)
            if match:
                f[i, j] = f[i - 1, j - 1] + 1
            else:
                f[i, j] = max(f[i - 1, j], f[i, j - 1])
    return int(f[m, n])


def _random_pair(rng, lo=1, hi=15):
    a = rng.uniform(0, 3, (int(rng.integers(lo, hi)), 2))
    b = rng.uniform(0, 3, (int(rng.integers(lo, hi)), 2))
    return a, b


class TestVectorizedAgainstLoops:
    def test_dtw(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = _random_pair(rng)
            assert dtw_distance(a, b) == pytest.approx(_dtw_loop(a, b))

    def test_erp_default_gap(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = _random_pair(rng)
            assert erp_distance(a, b) == pytest.approx(_erp_loop(a, b))

    def test_erp_custom_gap(self):
        rng = np.random.default_rng(2)
        gap = (1.5, -0.5)
        for _ in range(20):
            a, b = _random_pair(rng)
            assert erp_distance(a, b, gap=gap) == pytest.approx(
                _erp_loop(a, b, gap=gap))

    def test_edr(self):
        rng = np.random.default_rng(3)
        for _ in range(30):
            a, b = _random_pair(rng)
            assert edr_distance(a, b, eps=0.5) == pytest.approx(
                _edr_loop(a, b, eps=0.5))

    def test_lcss(self):
        rng = np.random.default_rng(4)
        for _ in range(30):
            a, b = _random_pair(rng)
            assert lcss_similarity(a, b, eps=0.5) == _lcss_loop(a, b, eps=0.5)

    def test_rectangular_extremes(self):
        rng = np.random.default_rng(5)
        one = rng.uniform(0, 1, (1, 2))
        many = rng.uniform(0, 1, (40, 2))
        assert dtw_distance(one, many) == pytest.approx(_dtw_loop(one, many))
        assert dtw_distance(many, one) == pytest.approx(_dtw_loop(many, one))
        assert frechet_distance(one, many) == pytest.approx(
            float(np.hypot(*(many - one[0]).T).max()))
        assert erp_distance(one, many) == pytest.approx(_erp_loop(one, many))

    def test_two_by_two_frechet(self):
        # Hand-checkable 2x2 case.
        a = np.array([(0.0, 0.0), (1.0, 0.0)])
        b = np.array([(0.0, 1.0), (1.0, 1.0)])
        assert frechet_distance(a, b) == pytest.approx(1.0)

    def test_long_sequences_stay_consistent(self):
        rng = np.random.default_rng(6)
        a = rng.uniform(0, 1, (150, 2))
        b = rng.uniform(0, 1, (130, 2))
        assert dtw_distance(a, b) == pytest.approx(_dtw_loop(a, b))
        assert erp_distance(a, b) == pytest.approx(_erp_loop(a, b))
