"""Property-based tests (hypothesis) on core invariants.

These cover DESIGN.md section 5: z-order bijectivity, bound soundness,
exactness of trie search vs brute force, partitioning conservation, and
greedy-hitting-set set preservation — all over generated inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.core.rearrange import greedy_hitting_set_order
from repro.core.rptrie import RPTrie
from repro.core.search import local_search
from repro.core.zorder import z_decode, z_encode
from repro.distances import (
    dtw_distance,
    erp_distance,
    frechet_distance,
    get_measure,
    hausdorff_distance,
)
from repro.partitioning.strategies import heterogeneous_partitions
from repro.types import BoundingBox, Trajectory, TrajectoryDataset

# -- strategies ---------------------------------------------------------------

coordinates = st.integers(min_value=0, max_value=2**20 - 1)

finite_points = st.lists(
    st.tuples(st.floats(0.01, 7.99), st.floats(0.01, 7.99)),
    min_size=1, max_size=12,
)


def trajectory_lists(min_count=2, max_count=12):
    return st.lists(finite_points, min_size=min_count, max_size=max_count)


GRID = Grid(origin_x=0.0, origin_y=0.0, delta=0.5, resolution=16)

MEASURES = [
    get_measure("hausdorff"),
    get_measure("frechet"),
    get_measure("dtw"),
    get_measure("lcss", eps=0.3),
    get_measure("edr", eps=0.3),
    get_measure("erp"),
]


# -- z-order -------------------------------------------------------------------

@given(coordinates, coordinates)
def test_zorder_roundtrip(x, y):
    assert z_decode(z_encode(x, y)) == (x, y)


@given(coordinates, coordinates, coordinates, coordinates)
def test_zorder_injective(x1, y1, x2, y2):
    if (x1, y1) != (x2, y2):
        assert z_encode(x1, y1) != z_encode(x2, y2)


# -- metric properties ----------------------------------------------------------

@given(finite_points, finite_points)
def test_hausdorff_symmetric(a, b):
    pa, pb = np.array(a), np.array(b)
    assert hausdorff_distance(pa, pb) == pytest.approx(
        hausdorff_distance(pb, pa))


@given(finite_points, finite_points, finite_points)
@settings(max_examples=50)
def test_hausdorff_triangle_inequality(a, b, c):
    pa, pb, pc = np.array(a), np.array(b), np.array(c)
    assert (hausdorff_distance(pa, pc)
            <= hausdorff_distance(pa, pb) + hausdorff_distance(pb, pc) + 1e-7)


@given(finite_points, finite_points, finite_points)
@settings(max_examples=50)
def test_erp_triangle_inequality(a, b, c):
    pa, pb, pc = np.array(a), np.array(b), np.array(c)
    assert (erp_distance(pa, pc)
            <= erp_distance(pa, pb) + erp_distance(pb, pc) + 1e-7)


@given(finite_points)
def test_identity_of_indiscernibles(points):
    pa = np.array(points)
    assert hausdorff_distance(pa, pa) == 0.0
    assert frechet_distance(pa, pa) == 0.0
    assert dtw_distance(pa, pa) == 0.0


@given(finite_points, finite_points)
def test_frechet_dominates_hausdorff(a, b):
    pa, pb = np.array(a), np.array(b)
    assert frechet_distance(pa, pb) >= hausdorff_distance(pa, pb) - 1e-9


# -- trie search exactness --------------------------------------------------------

@given(trajectory_lists(min_count=3, max_count=10),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_search_exact_for_every_measure(point_lists, k, measure_index):
    measure = MEASURES[measure_index]
    trajectories = [Trajectory(np.array(p), traj_id=i)
                    for i, p in enumerate(point_lists)]
    trie = RPTrie(GRID, measure, num_pivots=2, pivot_groups=2)
    trie.build(trajectories)
    query = trajectories[0]
    result = local_search(trie, query, k)
    expected = sorted(measure.distance(query, t) for t in trajectories)[:k]
    got = result.distances()
    assert len(got) == min(k, len(trajectories))
    for g, e in zip(got, expected):
        assert g == pytest.approx(e, abs=1e-9)


@given(trajectory_lists(min_count=3, max_count=10),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_optimized_trie_exact_hausdorff(point_lists, k):
    measure = get_measure("hausdorff")
    trajectories = [Trajectory(np.array(p), traj_id=i)
                    for i, p in enumerate(point_lists)]
    trie = RPTrie(GRID, measure, optimized=True).build(trajectories)
    query = trajectories[-1]
    result = local_search(trie, query, k)
    expected = sorted(measure.distance(query, t) for t in trajectories)[:k]
    for g, e in zip(result.distances(), expected):
        assert g == pytest.approx(e, abs=1e-9)


@given(trajectory_lists(min_count=3, max_count=10),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_frozen_trie_equivalent_to_dict_trie(point_lists, k):
    from repro.core.succinct import SuccinctRPTrie
    measure = get_measure("hausdorff")
    trajectories = [Trajectory(np.array(p), traj_id=i)
                    for i, p in enumerate(point_lists)]
    trie = RPTrie(GRID, measure, num_pivots=2, pivot_groups=2)
    trie.build(trajectories)
    frozen = SuccinctRPTrie(trie)
    query = trajectories[0]
    live = local_search(trie, query, k).distances()
    cold = local_search(frozen, query, k).distances()
    assert len(live) == len(cold)
    for a, b in zip(live, cold):
        assert a == pytest.approx(b, abs=1e-12)


# -- hitting set -------------------------------------------------------------------

z_set_lists = st.lists(
    st.frozensets(st.integers(0, 20), min_size=1, max_size=6),
    min_size=1, max_size=25,
)


@given(z_set_lists)
def test_greedy_hitting_set_preserves_sets(z_sets):
    tagged = [(zs, tid) for tid, zs in enumerate(z_sets)]
    ordered = greedy_hitting_set_order(tagged)
    assert len(ordered) == len(tagged)
    by_tid = {tid: set(zs) for zs, tid in ordered}
    for tid, zs in enumerate(z_sets):
        assert by_tid[tid] == set(zs)


@given(z_set_lists)
def test_greedy_hitting_set_orders_are_permutations(z_sets):
    tagged = [(zs, tid) for tid, zs in enumerate(z_sets)]
    for zs, tid in greedy_hitting_set_order(tagged):
        assert len(zs) == len(set(zs))


# -- partitioning conservation -------------------------------------------------------

@given(trajectory_lists(min_count=2, max_count=30),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_heterogeneous_partitioning_conserves(point_lists, num_partitions):
    dataset = TrajectoryDataset(trajectories=[
        Trajectory(np.array(p)) for p in point_lists])
    partitions = heterogeneous_partitions(dataset, num_partitions)
    assert len(partitions) == num_partitions
    ids = sorted(t.traj_id for part in partitions for t in part)
    assert ids == sorted(dataset.ids())
    sizes = [len(p) for p in partitions]
    assert max(sizes) - min(sizes) <= 1


# -- grid containment ------------------------------------------------------------------

@given(st.floats(0.0, 15.99), st.floats(0.0, 15.99))
def test_grid_point_in_its_cell(x, y):
    grid = Grid(0.0, 0.0, 0.5, 32)
    z = grid.z_value_of(x, y)
    box = grid.cell_bounds(z)
    assert box.min_x - 1e-9 <= x <= box.max_x + 1e-9
    assert box.min_y - 1e-9 <= y <= box.max_y + 1e-9
    assert grid.min_distance_to_cell(x, y, z) == 0.0


@given(st.floats(0.0, 7.99), st.floats(0.0, 7.99))
def test_reference_point_within_half_diagonal(x, y):
    z = GRID.z_value_of(x, y)
    px, py = GRID.reference_point(z)
    assert np.hypot(px - x, py - y) <= GRID.half_diagonal + 1e-9
