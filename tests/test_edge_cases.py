"""Edge-case tests across modules: empty inputs, degenerate sizes,
single-element structures, over-partitioning."""

import numpy as np
import pytest

from repro.baselines.dft import DFTIndex, _segment_boxes
from repro.baselines.dita import DITAIndex
from repro.cluster.driver import merge_top_k
from repro.core.grid import Grid
from repro.core.rptrie import RPTrie
from repro.core.search import local_range_search, local_search
from repro.core.succinct import SuccinctRPTrie
from repro.core.zorder import z_encode_array
from repro.distances import get_measure
from repro.repose import Repose
from repro.types import BoundingBox, Trajectory, TrajectoryDataset


class TestEmptyIndex:
    def test_empty_trie_build_and_search(self, small_grid):
        trie = RPTrie(small_grid, "hausdorff").build([])
        query = Trajectory([(1.0, 1.0)], traj_id=0)
        assert local_search(trie, query, 5).items == []
        assert local_range_search(trie, query, 10.0).items == []
        assert trie.node_count == 0

    def test_empty_frozen_trie(self, small_grid):
        trie = RPTrie(small_grid, "hausdorff").build([])
        frozen = SuccinctRPTrie(trie)
        query = Trajectory([(1.0, 1.0)], traj_id=0)
        assert local_search(frozen, query, 5).items == []

    def test_merge_no_partials(self):
        assert merge_top_k([], k=3).items == []


class TestSingleTrajectory:
    def test_trie_with_one_trajectory(self, small_grid):
        traj = Trajectory([(1.0, 1.0), (2.0, 2.0)], traj_id=0)
        trie = RPTrie(small_grid, "hausdorff").build([traj])
        result = local_search(trie, traj, 5)
        assert result.ids() == [0]

    def test_single_point_trajectories(self, small_grid):
        """Degenerate single-point trajectories across measures."""
        a = Trajectory([(1.0, 1.0)], traj_id=0)
        b = Trajectory([(6.0, 6.0)], traj_id=1)
        for name in ("hausdorff", "frechet", "dtw", "erp"):
            trie = RPTrie(small_grid, get_measure(name)).build([a, b])
            result = local_search(trie, a, 2)
            assert result.ids()[0] == 0


class TestDegenerateGrids:
    def test_single_cell_grid(self):
        grid = Grid(0.0, 0.0, 100.0, 1)
        assert grid.z_value_of(50.0, 50.0) == 0
        assert grid.reference_point(0) == (50.0, 50.0)

    def test_delta_larger_than_span(self):
        grid = Grid.fit(BoundingBox(0, 0, 1, 1), delta=50.0)
        assert grid.resolution == 1

    def test_search_on_single_cell_grid(self):
        grid = Grid(0.0, 0.0, 10.0, 1)
        trajs = [Trajectory([(1.0, 1.0), (2.0, 2.0)], traj_id=0),
                 Trajectory([(8.0, 8.0)], traj_id=1)]
        trie = RPTrie(grid, "hausdorff").build(trajs)
        result = local_search(trie, trajs[0], 2)
        assert result.ids() == [0, 1]


class TestOverPartitioning:
    def test_more_partitions_than_trajectories(self):
        ds = TrajectoryDataset(trajectories=[
            Trajectory([(float(i), float(i)), (i + 0.5, i + 0.5)])
            for i in range(3)])
        engine = Repose.build(ds, measure="hausdorff", delta=0.5,
                              num_partitions=8)
        outcome = engine.top_k(ds.trajectories[0], 3)
        assert len(outcome.result) == 3


class TestBaselineEdges:
    def test_segment_boxes_single_point(self):
        boxes = _segment_boxes(Trajectory([(2.0, 3.0)], traj_id=0))
        assert len(boxes) == 1
        assert boxes[0].min_x == boxes[0].max_x == 2.0

    def test_dft_single_trajectory(self):
        traj = Trajectory([(0.0, 0.0), (1.0, 1.0)], traj_id=0)
        index = DFTIndex("hausdorff").build([traj])
        assert index.top_k(traj, 1).ids() == [0]

    def test_dita_coarse_grid(self):
        rng = np.random.default_rng(0)
        trajs = [Trajectory(rng.uniform(0, 1, (5, 2)), traj_id=i)
                 for i in range(10)]
        index = DITAIndex("frechet", grid_resolution=1).build(trajs)
        measure = get_measure("frechet")
        expected = sorted((measure.distance(trajs[0], t), t.traj_id)
                          for t in trajs)[:3]
        got = index.top_k(trajs[0], 3)
        assert [round(d, 9) for d in got.distances()] == \
            [round(d, 9) for d, _ in expected]


class TestVectorizedEdges:
    def test_z_encode_array_empty(self):
        out = z_encode_array(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        assert out.shape == (0,)

    def test_identical_points_distance_zero(self):
        same = np.array([(1.0, 1.0)] * 5)
        for name in ("hausdorff", "frechet", "dtw", "erp"):
            assert get_measure(name).distance(same, same) == 0.0

    def test_length_one_vs_length_many(self):
        one = np.array([(0.0, 0.0)])
        many = np.array([(0.0, 0.0), (3.0, 4.0)])
        assert get_measure("hausdorff").distance(one, many) == 5.0
        assert get_measure("frechet").distance(one, many) == 5.0
        assert get_measure("dtw").distance(one, many) == 5.0


class TestQueryEqualsDataExtremes:
    def test_all_identical_trajectories(self, small_grid):
        """Many trajectories in the same cells exercise shared leaves."""
        base = np.array([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        trajs = [Trajectory(base + 0.01 * i, traj_id=i) for i in range(20)]
        trie = RPTrie(small_grid, "hausdorff").build(trajs)
        result = local_search(trie, trajs[0], 5)
        assert len(result) == 5
        assert result.distances()[0] == 0.0

    def test_duplicate_geometry_different_ids(self, small_grid):
        points = [(1.0, 1.0), (5.0, 5.0)]
        a = Trajectory(points, traj_id=0)
        b = Trajectory(points, traj_id=1)
        trie = RPTrie(small_grid, "hausdorff").build([a, b])
        result = local_search(trie, a, 2)
        assert sorted(result.ids()) == [0, 1]
        assert result.distances() == [0.0, 0.0]
