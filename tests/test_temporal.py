"""Tests for the spatio-temporal extension (paper's future work)."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.exceptions import IndexNotBuiltError, InvalidTrajectoryError
from repro.temporal import STLocalIndex, TimedTrajectory, st_hausdorff
from repro.types import BoundingBox


def _timed(count, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        n = int(rng.integers(4, 12))
        points = rng.uniform(0.1, 7.9, (n, 2))
        start = rng.uniform(0, 3600)
        stamps = start + np.cumsum(rng.uniform(1, 30, n))
        out.append(TimedTrajectory(points, stamps, traj_id=i))
    return out


@pytest.fixture
def grid():
    return Grid.fit(BoundingBox(0, 0, 8, 8), delta=0.5)


class TestTimedTrajectory:
    def test_requires_matching_lengths(self):
        with pytest.raises(InvalidTrajectoryError):
            TimedTrajectory([(0.0, 0.0), (1.0, 1.0)], [0.0])

    def test_requires_monotone_timestamps(self):
        with pytest.raises(InvalidTrajectoryError):
            TimedTrajectory([(0.0, 0.0), (1.0, 1.0)], [5.0, 1.0])

    def test_timestamps_immutable(self):
        traj = TimedTrajectory([(0.0, 0.0)], [1.0], traj_id=0)
        with pytest.raises(ValueError):
            traj.timestamps[0] = 2.0

    def test_is_a_trajectory(self):
        traj = TimedTrajectory([(0.0, 0.0), (1.0, 1.0)], [0.0, 10.0])
        assert len(traj) == 2
        assert traj.bounding_box().max_x == 1.0


class TestSTHausdorff:
    def test_identical(self):
        a = _timed(1, seed=1)[0]
        assert st_hausdorff(a, a) == 0.0

    def test_dominates_spatial(self):
        from repro.distances import hausdorff_distance
        for a, b in zip(_timed(10, seed=2), _timed(10, seed=3)):
            st = st_hausdorff(a, b, time_weight=0.001)
            spatial = hausdorff_distance(a.points, b.points)
            assert st >= spatial - 1e-12

    def test_time_weight_scales_temporal_term(self):
        # Same geometry, shifted timestamps: distance is purely temporal.
        points = [(1.0, 1.0), (2.0, 2.0)]
        a = TimedTrajectory(points, [0.0, 10.0], traj_id=0)
        b = TimedTrajectory(points, [100.0, 110.0], traj_id=1)
        assert st_hausdorff(a, b, time_weight=1.0) == pytest.approx(100.0)
        assert st_hausdorff(a, b, time_weight=0.5) == pytest.approx(50.0)

    def test_symmetry(self):
        a, b = _timed(2, seed=4)
        assert st_hausdorff(a, b, 0.01) == pytest.approx(
            st_hausdorff(b, a, 0.01))


class TestSTLocalIndex:
    def test_exact_against_brute_force(self, grid):
        data = _timed(40, seed=5)
        index = STLocalIndex(grid, time_weight=0.001).build(data)
        query = data[7]
        result = index.top_k(query, 8)
        expected = sorted(
            (st_hausdorff(query, t, 0.001), t.traj_id) for t in data)[:8]
        assert [round(d, 9) for d in result.distances()] == \
            [round(d, 9) for d, _ in expected]

    def test_temporal_component_changes_ranking(self, grid):
        """Two spatially identical trajectories at different times must
        rank by time under a heavy time weight."""
        points = np.array([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        morning = TimedTrajectory(points, [0.0, 60.0, 120.0], traj_id=0)
        evening = TimedTrajectory(points + 0.01,
                                  [43200.0, 43260.0, 43320.0], traj_id=1)
        near_morning = TimedTrajectory(points + 0.3,
                                       [30.0, 90.0, 150.0], traj_id=2)
        index = STLocalIndex(grid, time_weight=1.0).build(
            [morning, evening, near_morning])
        result = index.top_k(morning, 2)
        # Despite evening being spatially closer, time dominates.
        assert result.ids() == [0, 2]

    def test_rejects_untimed_trajectories(self, grid):
        from repro.types import Trajectory
        with pytest.raises(InvalidTrajectoryError):
            STLocalIndex(grid).build([Trajectory([(0.0, 0.0)], traj_id=0)])

    def test_unbuilt_raises(self, grid):
        with pytest.raises(IndexNotBuiltError):
            STLocalIndex(grid).top_k(_timed(1)[0], 1)

    def test_spatial_pruning_still_effective(self, grid):
        data = _timed(60, seed=6)
        index = STLocalIndex(grid, time_weight=0.0001).build(data)
        result = index.top_k(data[0], 3)
        assert result.stats.distance_computations < len(data) * 2
