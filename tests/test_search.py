"""Tests for the best-first top-k search (Algorithm 2).

The defining invariant: for every measure and every trie variant, the
search returns exactly the brute-force top-k distances.
"""

import numpy as np
import pytest

from repro.core.rptrie import RPTrie
from repro.core.search import TopKResult, local_search
from repro.core.succinct import SuccinctRPTrie
from repro.distances import get_measure
from repro.types import Trajectory

MEASURES = {
    "hausdorff": get_measure("hausdorff"),
    "frechet": get_measure("frechet"),
    "dtw": get_measure("dtw"),
    "lcss": get_measure("lcss", eps=0.4),
    "edr": get_measure("edr", eps=0.4),
    "erp": get_measure("erp"),
}


def brute_force(measure, query, trajectories, k):
    distances = sorted(
        (measure.distance(query, t), t.traj_id) for t in trajectories)
    return distances[:k]


def assert_same_distances(result: TopKResult, expected, abs_tol=1e-9):
    got = [round(d, 9) for d in result.distances()]
    want = [round(d, 9) for d, _ in expected]
    assert got == want, f"got {got[:5]}..., want {want[:5]}..."


@pytest.mark.parametrize("name", list(MEASURES))
class TestExactness:
    def test_topk_matches_brute_force(self, small_grid, small_trajectories,
                                      name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[7]
        result = local_search(trie, query, 10)
        assert_same_distances(result,
                              brute_force(measure, query,
                                          small_trajectories, 10))

    def test_k_one(self, small_grid, small_trajectories, name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[3]
        result = local_search(trie, query, 1)
        # The query itself is in the dataset: nearest distance is 0.
        assert result.distances()[0] == pytest.approx(0.0, abs=1e-12)

    def test_k_larger_than_dataset(self, small_grid, small_trajectories,
                                   name):
        measure = MEASURES[name]
        subset = small_trajectories[:8]
        trie = RPTrie(small_grid, measure).build(subset)
        result = local_search(trie, subset[0], 50)
        assert len(result) == 8

    def test_external_query(self, small_grid, small_trajectories, name):
        """Query not contained in the dataset."""
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        rng = np.random.default_rng(42)
        query = Trajectory(rng.uniform(0.1, 7.9, (9, 2)), traj_id=777)
        result = local_search(trie, query, 5)
        assert_same_distances(result,
                              brute_force(measure, query,
                                          small_trajectories, 5))


class TestOptimizedTrieExactness:
    def test_hausdorff_optimized_exact(self, small_grid, small_trajectories):
        measure = MEASURES["hausdorff"]
        trie = RPTrie(small_grid, measure, optimized=True).build(
            small_trajectories)
        query = small_trajectories[11]
        result = local_search(trie, query, 10)
        assert_same_distances(result,
                              brute_force(measure, query,
                                          small_trajectories, 10))


class TestSuccinctExactness:
    @pytest.mark.parametrize("name", ["hausdorff", "frechet", "dtw"])
    def test_frozen_trie_same_results(self, small_grid, small_trajectories,
                                      name):
        measure = MEASURES[name]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        frozen = SuccinctRPTrie(trie)
        query = small_trajectories[5]
        live = local_search(trie, query, 10)
        cold = local_search(frozen, query, 10)
        assert [round(d, 9) for d in live.distances()] == \
            [round(d, 9) for d in cold.distances()]


class TestAblationSwitches:
    def test_disabling_bounds_preserves_exactness(self, small_grid,
                                                  small_trajectories):
        measure = MEASURES["hausdorff"]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[2]
        expected = brute_force(measure, query, small_trajectories, 10)
        for options in ({"use_pivots": False}, {"use_lbt": False},
                        {"use_lbo": False},
                        {"use_pivots": False, "use_lbt": False,
                         "use_lbo": False}):
            result = local_search(trie, query, 10, **options)
            assert_same_distances(result, expected)

    def test_bounds_reduce_refinements(self, small_grid, small_trajectories):
        """With all pruning off, every trajectory must be refined."""
        measure = MEASURES["hausdorff"]
        trie = RPTrie(small_grid, measure).build(small_trajectories)
        query = small_trajectories[2]
        with_bounds = local_search(trie, query, 3)
        without = local_search(trie, query, 3, use_pivots=False,
                               use_lbt=False, use_lbo=False)
        assert (with_bounds.stats.distance_computations
                <= without.stats.distance_computations)


class TestPaperExample:
    def test_running_example_top2(self, paper_grid, paper_trajectories,
                                  paper_query):
        """Example 1: the top-2 under Hausdorff is {tau_1, tau_4}."""
        trie = RPTrie(paper_grid, "hausdorff").build(paper_trajectories)
        result = local_search(trie, paper_query, 2)
        assert sorted(result.ids()) == [1, 4]
        assert result.distances()[0] == pytest.approx(2.83, abs=0.005)
        assert result.distances()[1] == pytest.approx(3.16, abs=0.005)


class TestResultContainer:
    def test_kth_distance_of_empty(self):
        assert TopKResult().kth_distance() == float("inf")

    def test_sorted_ascending(self, small_grid, small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        result = local_search(trie, small_trajectories[0], 10)
        distances = result.distances()
        assert distances == sorted(distances)

    def test_stats_populated(self, small_grid, small_trajectories):
        trie = RPTrie(small_grid, "hausdorff").build(small_trajectories)
        result = local_search(trie, small_trajectories[0], 5)
        assert result.stats.nodes_visited > 0
        assert result.stats.distance_computations > 0
