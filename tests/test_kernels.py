"""Compiled-vs-numpy equivalence for the DP kernel tier.

The kernel registry (:mod:`repro.distances.kernels`) promises that
every backend computes the five exact DP families in the *same
association order* as the numpy sweeps, so exact values are
bit-identical — ``TOLERANCES`` is 0.0 for every measure and these
tests assert it literally, on stacks that include ties, length-1
candidates, duplicate trajectories and non-contiguous tensors.  The
early-abandon contract under a finite ``dk`` is weaker by design
(backends may check at different cadences, so the exact masks may
diverge) and is asserted as: every value still marked exact is
bit-identical, every abandoned value is a sound lower bound of the
exact distance that has reached ``dk``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.distances.batch import (
    BatchRefiner,
    batch_match_tensor,
    batch_point_distance_tensor,
    refine_top_k,
)
from repro.distances.dtw import dtw_distance
from repro.distances.edr import edr_distance
from repro.distances.erp import DEFAULT_GAP, erp_distance
from repro.distances.frechet import frechet_distance
from repro.distances.kernels import (
    BACKEND_NAMES,
    KERNELS_ENV,
    TOLERANCES,
    available_backends,
    get_kernels,
    resolve_backend,
)
from repro.distances.lcss import lcss_distance
from repro.core.search import ResultHeap
from repro.core.store import TrajectoryStore
from repro.distances.base import get_measure
from repro.types import Trajectory

FAMILIES = ("dtw", "frechet", "erp", "edr", "lcss")
EPS = 0.35
BACKENDS = available_backends()
COMPILED = tuple(b for b in BACKENDS if b != "numpy")


def _stack(seed: int, count: int = 24, m: int = 13,
           min_len: int = 1, max_len: int = 28):
    """A query plus a ragged candidate stack with deliberate ties:
    the first two candidates are identical and one is length-1."""
    rng = np.random.default_rng(seed)
    query = rng.random((m, 2)) * 4.0
    lens = rng.integers(min_len, max_len + 1, size=count)
    lens[0] = lens[1] = max(2, int(lens[0]))
    lens[2] = 1
    width = int(lens.max())
    padded = np.full((count, width, 2), np.inf)
    for c, n in enumerate(lens):
        pts = rng.random((int(n), 2)) * 4.0
        padded[c, :n] = pts
    padded[1, :lens[1]] = padded[0, :lens[0]]  # exact tie twin
    return query, padded, lens.astype(np.int64)


def _tensors(family: str, query: np.ndarray, padded: np.ndarray):
    """The broadcast tensor argument list for one family (everything
    before ``lengths`` in the kernel signature)."""
    if family in ("edr", "lcss"):
        return (batch_match_tensor(query, padded, EPS),)
    dm = batch_point_distance_tensor(query, padded)
    if family == "erp":
        g = np.asarray(DEFAULT_GAP)
        ga = np.hypot(query[:, 0] - g[0], query[:, 1] - g[1])
        with np.errstate(invalid="ignore"):
            gb = np.hypot(padded[:, :, 0] - g[0], padded[:, :, 1] - g[1])
        return dm, ga, gb
    return (dm,)


def _pair_reference(family: str, query: np.ndarray,
                    padded: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    fns = {"dtw": dtw_distance, "frechet": frechet_distance,
           "erp": erp_distance,
           "edr": lambda a, b: edr_distance(a, b, eps=EPS),
           "lcss": lambda a, b: lcss_distance(a, b, eps=EPS)}
    fn = fns[family]
    return np.array([fn(query, padded[c, :n])
                     for c, n in enumerate(lengths)])


def _exact_fn(kernels, family: str):
    return getattr(kernels, f"{family}_exact")


def _banded_fn(kernels, family: str):
    return getattr(kernels, f"{family}_banded", None)


@pytest.mark.parametrize("family", FAMILIES)
def test_numpy_kernels_match_pair_reference(family):
    """Anchor: the numpy kernel set equals the per-pair distances."""
    query, padded, lengths = _stack(seed=3)
    values, mask = _exact_fn(get_kernels("numpy"), family)(
        *_tensors(family, query, padded), lengths, dk=np.inf)
    assert mask.all()
    ref = _pair_reference(family, query, padded, lengths)
    np.testing.assert_allclose(values, ref, rtol=0, atol=1e-10)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("family", FAMILIES)
def test_exact_bit_identity(family, backend):
    """dk=inf: compiled values are bit-identical to numpy, all exact."""
    tol = TOLERANCES[family]
    for seed in (0, 1, 2):
        query, padded, lengths = _stack(seed=seed)
        args = _tensors(family, query, padded)
        base, base_mask = _exact_fn(get_kernels("numpy"), family)(
            *args, lengths, dk=np.inf)
        got, got_mask = _exact_fn(get_kernels(backend), family)(
            *args, lengths, dk=np.inf)
        assert base_mask.all() and got_mask.all()
        if tol == 0.0:
            assert np.array_equal(got, base), (
                f"{family}/{backend} not bit-identical at seed {seed}")
        else:  # pragma: no cover - all tolerances are currently 0.0
            np.testing.assert_allclose(got, base, rtol=0, atol=tol)
        # Tie twins must stay ties bit-for-bit on every backend.
        assert got[0] == got[1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_finite_dk_abandon_contract(family, backend):
    """Finite dk: exact-marked values bit-identical, abandoned values
    are sound lower bounds that reached the threshold."""
    for seed in (5, 6):
        query, padded, lengths = _stack(seed=seed, count=40, m=17)
        args = _tensors(family, query, padded)
        exact_vals, _ = _exact_fn(get_kernels("numpy"), family)(
            *args, lengths, dk=np.inf)
        dk = float(np.quantile(exact_vals, 0.35))
        values, mask = _exact_fn(get_kernels(backend), family)(
            *args, lengths, dk=dk)
        assert np.array_equal(values[mask], exact_vals[mask])
        abandoned = ~mask
        assert (values[abandoned] >= dk).all()
        assert (values[abandoned] <= exact_vals[abandoned] + 1e-12).all()
        # Abandonment must never touch candidates below the threshold.
        assert mask[exact_vals < dk].all()


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("family", FAMILIES)
def test_banded_screens_and_fallback(family, backend):
    """Banded kernels match numpy's windows bit-for-bit; a band wide
    enough to cover the matrix falls back to the exact sweep."""
    if family == "erp":
        pytest.skip("ERP has no banded screen")
    query, padded, lengths = _stack(seed=9, count=20, m=15, min_len=2)
    args = _tensors(family, query, padded)
    for band in (1, 3):
        base, base_exact = _banded_fn(get_kernels("numpy"), family)(
            *args, lengths, band)
        got, got_exact = _banded_fn(get_kernels(backend), family)(
            *args, lengths, band)
        assert got_exact == base_exact
        assert np.array_equal(got, base)
    exact_vals, _ = _exact_fn(get_kernels("numpy"), family)(
        *args, lengths, dk=np.inf)
    huge = max(args[0].shape[1], args[0].shape[2]) + 2
    got, got_exact = _banded_fn(get_kernels(backend), family)(
        *args, lengths, huge)
    assert got_exact is True
    assert np.array_equal(got, exact_vals)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("family", FAMILIES)
def test_unretained_and_noncontiguous_tensors(family, backend):
    """Kernels must accept sliced / non-contiguous tensor views (the
    refiner hands over gather slices, not owned buffers)."""
    query, padded, lengths = _stack(seed=13, count=30)
    keep = np.arange(0, 30, 3)
    sub = padded[keep][:, : int(lengths[keep].max())]
    args = _tensors(family, query, sub)
    sliced = tuple(a[:, ::-1][:, ::-1] if a.ndim > 1 else a for a in args)
    assert any(not a.flags["C_CONTIGUOUS"] for a in sliced if a.ndim > 1) \
        or all(a.flags["C_CONTIGUOUS"] for a in sliced)
    base, _ = _exact_fn(get_kernels("numpy"), family)(
        *args, lengths[keep], dk=np.inf)
    got, _ = _exact_fn(get_kernels(backend), family)(
        *sliced, lengths[keep], dk=np.inf)
    assert np.array_equal(got, base)


def test_registry_resolution_and_errors():
    assert resolve_backend("numpy") == "numpy"
    assert resolve_backend() in BACKEND_NAMES
    assert resolve_backend("auto") == resolve_backend(None)
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("fortran")
    unavailable = [b for b in BACKEND_NAMES if b not in BACKENDS]
    for name in unavailable:
        with pytest.raises(ValueError, match="not available"):
            resolve_backend(name)
    # The set cache hands back the same object per backend.
    assert get_kernels("numpy") is get_kernels("numpy")
    assert get_kernels("numpy").compiled is False
    for name in COMPILED:
        assert get_kernels(name).compiled is True


def test_env_override_controls_auto(tmp_path):
    """REPRO_KERNELS replaces the auto choice in a fresh interpreter
    (the in-process registry may already be cached)."""
    env = {**os.environ, KERNELS_ENV: "numpy",
           "PYTHONPATH": os.pathsep.join(sys.path)}
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.distances.kernels import resolve_backend;"
         "print(resolve_backend())"],
        env=env, capture_output=True, text=True, check=True)
    assert out.stdout.strip() == "numpy"


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("measure_name", FAMILIES)
def test_refiner_dispatch_bit_identical_topk(measure_name, backend):
    """refine_top_k through a compiled backend produces the same heap
    (values, ids and tie-breaks) as the numpy backend."""
    rng = np.random.default_rng(21)
    trajs = [Trajectory(rng.random((int(rng.integers(2, 24)), 2)) * 4.0,
                        traj_id=i)
             for i in range(60)]
    trajs.append(Trajectory(trajs[0].points, traj_id=60))  # tie twin
    store = TrajectoryStore(trajs)
    measure = get_measure(measure_name)
    if measure_name in ("edr", "lcss"):
        measure = measure.with_params(eps=EPS)
    query = rng.random((11, 2)) * 4.0
    tids = [t.traj_id for t in trajs]
    heaps = {}
    for name in ("numpy", backend):
        heap = ResultHeap(k=7)
        refine_top_k(measure, query, list(tids), store, heap,
                     kernels=name)
        heaps[name] = heap.sorted_items()
    assert heaps[backend] == heaps["numpy"]


@pytest.mark.parametrize("backend", COMPILED)
def test_batchrefiner_exposes_selected_backend(backend):
    rng = np.random.default_rng(2)
    trajs = [Trajectory(rng.random((5, 2)), traj_id=i) for i in range(4)]
    store = TrajectoryStore(trajs)
    refiner = BatchRefiner(get_measure("dtw"), rng.random((6, 2)), store,
                           [t.traj_id for t in trajs], kernels=backend)
    assert refiner.kernels.name == backend
    assert refiner.kernels.compiled
