"""Unit tests for Z-order (Morton) encoding."""

import numpy as np
import pytest

from repro.core.zorder import (
    deinterleave,
    interleave,
    z_decode,
    z_encode,
    z_encode_array,
)


class TestInterleave:
    def test_paper_example(self):
        # Example 2: horizontal 010, vertical 101 -> z-value 011001.
        assert z_encode(0b010, 0b101) == 0b011001

    def test_origin(self):
        assert z_encode(0, 0) == 0

    def test_single_bits(self):
        assert z_encode(1, 0) == 0b10
        assert z_encode(0, 1) == 0b01

    def test_roundtrip_exhaustive_small(self):
        for x in range(16):
            for y in range(16):
                assert z_decode(z_encode(x, y)) == (x, y)

    def test_roundtrip_large_coordinates(self):
        x, y = 2**31 - 1, 2**30 + 12345
        assert deinterleave(interleave(x, y)) == (x, y)

    def test_monotone_within_quadrant(self):
        # z-order preserves ordering along each axis within a quadrant.
        assert z_encode(0, 0) < z_encode(1, 0) < z_encode(0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            z_encode(-1, 0)
        with pytest.raises(ValueError):
            z_decode(-1)


class TestVectorized:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 2**16, 100)
        ys = rng.integers(0, 2**16, 100)
        zs = z_encode_array(xs, ys)
        for x, y, z in zip(xs, ys, zs):
            assert int(z) == z_encode(int(x), int(y))

    def test_unique_per_cell(self):
        xs, ys = np.meshgrid(np.arange(32), np.arange(32))
        zs = z_encode_array(xs.ravel(), ys.ravel())
        assert len(np.unique(zs)) == 32 * 32
