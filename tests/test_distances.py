"""Unit tests for all six similarity measures and the registry."""

import numpy as np
import pytest

from repro.distances import (
    dtw_distance,
    edr_distance,
    erp_distance,
    frechet_distance,
    get_measure,
    hausdorff_distance,
    lcss_distance,
    lcss_similarity,
    list_measures,
)
from repro.distances.dtw import dtw_next_column
from repro.distances.frechet import frechet_next_column
from repro.distances.hausdorff import (
    directed_hausdorff,
    hausdorff_distance_threshold,
)
from repro.distances.matrix import euclidean, point_distance_matrix
from repro.exceptions import UnsupportedMeasureError
from repro.types import Trajectory

A = np.array([(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
B = np.array([(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])


class TestMatrixHelpers:
    def test_euclidean(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_point_distance_matrix_shape_and_values(self):
        dm = point_distance_matrix(A, B)
        assert dm.shape == (3, 3)
        assert dm[0, 0] == pytest.approx(1.0)
        assert dm[0, 2] == pytest.approx(np.hypot(2.0, 1.0))


class TestHausdorff:
    def test_parallel_lines(self):
        assert hausdorff_distance(A, B) == pytest.approx(1.0)

    def test_identity(self):
        assert hausdorff_distance(A, A) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(4, 2)), rng.normal(size=(7, 2))
        assert hausdorff_distance(x, y) == pytest.approx(hausdorff_distance(y, x))

    def test_directed_is_one_sided(self):
        sub = A[:1]  # single point (0,0): close to B only on one side
        assert directed_hausdorff(sub, B) == pytest.approx(1.0)
        assert directed_hausdorff(B, sub) == pytest.approx(np.hypot(2.0, 1.0))

    def test_paper_example_values(self, paper_trajectories, paper_query):
        expected = {1: 2.83, 2: 6.08, 3: 6.71, 4: 3.16, 5: 6.08}
        for traj in paper_trajectories:
            got = hausdorff_distance(paper_query.points, traj.points)
            assert got == pytest.approx(expected[traj.traj_id], abs=0.005)

    def test_threshold_exact_below(self):
        exact = hausdorff_distance(A, B)
        assert hausdorff_distance_threshold(A, B, exact + 1) == pytest.approx(exact)

    def test_threshold_abandons_above(self):
        got = hausdorff_distance_threshold(A, B, 0.5)
        assert got >= 0.5

    def test_triangle_inequality_random(self):
        rng = np.random.default_rng(1)
        for _ in range(25):
            x = rng.normal(size=(rng.integers(2, 6), 2))
            y = rng.normal(size=(rng.integers(2, 6), 2))
            z = rng.normal(size=(rng.integers(2, 6), 2))
            assert (hausdorff_distance(x, z)
                    <= hausdorff_distance(x, y) + hausdorff_distance(y, z) + 1e-9)


def _frechet_naive(a, b, i=None, j=None, memo=None):
    """Direct recursive Eq. 6 for cross-checking the DP."""
    if memo is None:
        memo = {}
        i, j = len(a) - 1, len(b) - 1
    if (i, j) in memo:
        return memo[(i, j)]
    d = float(np.hypot(*(a[i] - b[j])))
    if i == 0 and j == 0:
        value = d
    elif i == 0:
        value = max(d, _frechet_naive(a, b, 0, j - 1, memo))
    elif j == 0:
        value = max(d, _frechet_naive(a, b, i - 1, 0, memo))
    else:
        value = max(d, min(_frechet_naive(a, b, i - 1, j - 1, memo),
                           _frechet_naive(a, b, i - 1, j, memo),
                           _frechet_naive(a, b, i, j - 1, memo)))
    memo[(i, j)] = value
    return value


class TestFrechet:
    def test_parallel_lines(self):
        assert frechet_distance(A, B) == pytest.approx(1.0)

    def test_against_naive_recursion(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            x = rng.normal(size=(rng.integers(1, 7), 2))
            y = rng.normal(size=(rng.integers(1, 7), 2))
            assert frechet_distance(x, y) == pytest.approx(_frechet_naive(x, y))

    def test_at_least_hausdorff(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            x = rng.normal(size=(5, 2))
            y = rng.normal(size=(6, 2))
            assert frechet_distance(x, y) >= hausdorff_distance(x, y) - 1e-12

    def test_order_sensitivity(self):
        forward = np.array([(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        target = np.array([(0.0, 0.0), (2.0, 0.0)])
        reversed_ = forward[::-1].copy()
        assert frechet_distance(forward, target) < frechet_distance(reversed_, target)

    def test_incremental_column_matches_full(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 2))
        y = rng.normal(size=(6, 2))
        dm = point_distance_matrix(x, y)
        col = np.empty(0)
        for j in range(6):
            col = frechet_next_column(col, dm[:, j])
        assert col[-1] == pytest.approx(frechet_distance(x, y))


def _dtw_naive(a, b):
    m, n = len(a), len(b)
    dm = point_distance_matrix(a, b)
    f = np.full((m, n), np.inf)
    f[0, 0] = dm[0, 0]
    for i in range(1, m):
        f[i, 0] = f[i - 1, 0] + dm[i, 0]
    for j in range(1, n):
        f[0, j] = f[0, j - 1] + dm[0, j]
    for i in range(1, m):
        for j in range(1, n):
            f[i, j] = dm[i, j] + min(f[i - 1, j - 1], f[i - 1, j], f[i, j - 1])
    return float(f[-1, -1])


class TestDTW:
    def test_identity(self):
        assert dtw_distance(A, A) == 0.0

    def test_against_naive_dp(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            x = rng.normal(size=(rng.integers(1, 8), 2))
            y = rng.normal(size=(rng.integers(1, 8), 2))
            assert dtw_distance(x, y) == pytest.approx(_dtw_naive(x, y))

    def test_parallel_lines_sums(self):
        # Optimal coupling matches i-th with i-th: 3 unit costs.
        assert dtw_distance(A, B) == pytest.approx(3.0)

    def test_not_a_metric(self):
        # Known triangle-inequality violation for DTW.
        x = np.array([(0.0, 0.0)])
        y = np.array([(0.0, 0.0), (10.0, 0.0)])
        z = np.array([(10.0, 0.0), (10.0, 0.0), (10.0, 0.0)])
        assert dtw_distance(x, z) > dtw_distance(x, y) + dtw_distance(y, z)

    def test_incremental_column_matches_full(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(5, 2))
        dm = point_distance_matrix(x, y)
        col = np.empty(0)
        for j in range(5):
            col = dtw_next_column(col, dm[:, j])
        assert col[-1] == pytest.approx(dtw_distance(x, y))


class TestLCSS:
    def test_identical_full_match(self):
        assert lcss_similarity(A, A, eps=0.01) == 3
        assert lcss_distance(A, A, eps=0.01) == 0.0

    def test_no_match(self):
        far = A + 100.0
        assert lcss_similarity(A, far, eps=0.5) == 0
        assert lcss_distance(A, far, eps=0.5) == 1.0

    def test_partial_match(self):
        shifted = A.copy()
        shifted[2] += 50.0  # break the last point
        assert lcss_similarity(A, shifted, eps=0.1) == 2

    def test_eps_is_per_axis(self):
        # Points differ by 0.9 in both axes: Euclidean ~1.27 but LCSS
        # matching uses per-axis eps.
        a = np.array([(0.0, 0.0)])
        b = np.array([(0.9, 0.9)])
        assert lcss_similarity(a, b, eps=1.0) == 1
        assert lcss_similarity(a, b, eps=0.5) == 0

    def test_subsequence_order_matters(self):
        a = np.array([(0.0, 0.0), (1.0, 1.0)])
        b = np.array([(1.0, 1.0), (0.0, 0.0)])
        # Only one of the two points can match in order.
        assert lcss_similarity(a, b, eps=0.1) == 1

    def test_distance_in_unit_interval(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            x = rng.normal(size=(rng.integers(1, 6), 2))
            y = rng.normal(size=(rng.integers(1, 6), 2))
            d = lcss_distance(x, y, eps=0.5)
            assert 0.0 <= d <= 1.0


class TestEDR:
    def test_identical(self):
        assert edr_distance(A, A, eps=0.01) == 0.0

    def test_totally_different_is_max_ops(self):
        far = A + 100.0
        # 3 substitutions at cost 1 each.
        assert edr_distance(A, far, eps=0.5) == 3.0

    def test_single_edit(self):
        shifted = A.copy()
        shifted[1] += 50.0
        assert edr_distance(A, shifted, eps=0.1) == 1.0

    def test_length_difference_costs_deletions(self):
        assert edr_distance(A, A[:1], eps=0.01) == 2.0

    def test_symmetry(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(5, 2))
        y = rng.normal(size=(7, 2))
        assert edr_distance(x, y, eps=0.5) == edr_distance(y, x, eps=0.5)


class TestERP:
    def test_identical(self):
        assert erp_distance(A, A) == 0.0

    def test_gap_cost_for_extra_point(self):
        longer = np.vstack([A, [(2.0, 1.0)]])
        # Matching A 1:1 (cost 0) and skipping the extra point costs its
        # distance to the gap origin.
        assert erp_distance(A, longer) == pytest.approx(np.hypot(2.0, 1.0))

    def test_triangle_inequality_random(self):
        rng = np.random.default_rng(9)
        for _ in range(25):
            x = rng.normal(size=(rng.integers(1, 6), 2))
            y = rng.normal(size=(rng.integers(1, 6), 2))
            z = rng.normal(size=(rng.integers(1, 6), 2))
            assert (erp_distance(x, z)
                    <= erp_distance(x, y) + erp_distance(y, z) + 1e-9)

    def test_symmetry(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(6, 2))
        assert erp_distance(x, y) == pytest.approx(erp_distance(y, x))

    def test_custom_gap_point(self):
        gap = (100.0, 100.0)
        longer = np.vstack([A, [(2.0, 1.0)]])
        with_far_gap = erp_distance(A, longer, gap=gap)
        # Skipping near the far gap point is expensive; the optimal
        # alignment warps instead, but cost must exceed the default-gap cost.
        assert with_far_gap >= erp_distance(A, longer) - 1e-9


class TestRegistry:
    def test_all_six_registered(self):
        assert set(list_measures()) >= {"hausdorff", "frechet", "dtw",
                                        "lcss", "edr", "erp"}

    def test_unknown_measure_raises(self):
        with pytest.raises(UnsupportedMeasureError):
            get_measure("nope")

    def test_metric_flags(self):
        assert get_measure("hausdorff").is_metric
        assert get_measure("frechet").is_metric
        assert get_measure("erp").is_metric
        assert not get_measure("dtw").is_metric
        assert not get_measure("lcss").is_metric
        assert not get_measure("edr").is_metric

    def test_order_sensitivity_flags(self):
        assert not get_measure("hausdorff").order_sensitive
        for name in ("frechet", "dtw", "lcss", "edr", "erp"):
            assert get_measure(name).order_sensitive

    def test_with_params_override(self):
        loose = get_measure("lcss", eps=10.0)
        tight = get_measure("lcss", eps=1e-9)
        x = np.array([(0.0, 0.0)])
        y = np.array([(1.0, 1.0)])
        assert loose.distance(x, y) == 0.0
        assert tight.distance(x, y) == 1.0

    def test_distance_accepts_trajectories(self):
        measure = get_measure("hausdorff")
        a = Trajectory(A, traj_id=0)
        b = Trajectory(B, traj_id=1)
        assert measure.distance(a, b) == pytest.approx(1.0)

    def test_case_insensitive_lookup(self):
        assert get_measure("Hausdorff").name == "hausdorff"
