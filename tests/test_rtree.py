"""Tests for the STR-packed R-tree substrate."""

import numpy as np
import pytest

from repro.baselines.rtree import RTree, RTreeEntry, _box_distance, _str_pack
from repro.types import BoundingBox


def _random_entries(count, seed=0):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(count):
        x, y = rng.uniform(0, 100, 2)
        w, h = rng.uniform(0, 5, 2)
        entries.append(RTreeEntry(BoundingBox(x, y, x + w, y + h), payload=i))
    return entries


class TestBoxDistance:
    def test_overlapping_is_zero(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        assert _box_distance(a, b) == 0.0

    def test_axis_gap(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(3, 0, 4, 1)
        assert _box_distance(a, b) == pytest.approx(2.0)

    def test_diagonal_gap(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(4, 5, 6, 7)
        assert _box_distance(a, b) == pytest.approx(5.0)


class TestStrPack:
    def test_groups_cover_all(self):
        entries = _random_entries(100)
        groups = _str_pack(entries, 16, key_box=lambda e: e.box)
        flattened = [e.payload for g in groups for e in g]
        assert sorted(flattened) == list(range(100))

    def test_group_sizes_bounded(self):
        entries = _random_entries(100)
        for group in _str_pack(entries, 16, key_box=lambda e: e.box):
            assert 1 <= len(group) <= 16


class TestRTree:
    def test_empty_tree(self):
        tree = RTree([])
        assert list(tree.entries_within(BoundingBox(0, 0, 1, 1), 10)) == []
        assert tree.memory_bytes() == 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree([], fanout=1)

    def test_all_entries_preserved(self):
        entries = _random_entries(77)
        tree = RTree(entries, fanout=8)
        assert sorted(e.payload for e in tree.all_entries()) == list(range(77))

    def test_range_query_matches_linear_scan(self):
        entries = _random_entries(200, seed=1)
        tree = RTree(entries, fanout=8)
        probe = BoundingBox(40, 40, 45, 45)
        for radius in (0.0, 5.0, 20.0, 200.0):
            expected = {e.payload for e in entries
                        if _box_distance(e.box, probe) <= radius}
            got = {e.payload for e in tree.entries_within(probe, radius)}
            assert got == expected

    def test_tree_is_balanced(self):
        tree = RTree(_random_entries(500), fanout=8)
        # STR packing: height close to log_fanout(n / fanout).
        assert 1 <= tree.height <= 4

    def test_parent_boxes_contain_children(self):
        tree = RTree(_random_entries(120, seed=2), fanout=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                children_boxes = [e.box for e in node.entries]
            else:
                children_boxes = [c.box for c in node.children]
                stack.extend(node.children)
            for box in children_boxes:
                assert node.box.min_x <= box.min_x
                assert node.box.min_y <= box.min_y
                assert node.box.max_x >= box.max_x
                assert node.box.max_y >= box.max_y

    def test_memory_grows_with_size(self):
        small = RTree(_random_entries(50))
        large = RTree(_random_entries(500))
        assert small.memory_bytes() < large.memory_bytes()
