"""End-to-end integration tests across the full stack.

These exercise the pipelines the benchmarks rely on: synthetic data ->
preprocessing -> partitioning -> distributed build -> queries -> merge,
for REPOSE and every baseline, and the cross-algorithm agreement that
underpins Table IV.
"""

import numpy as np
import pytest

from repro.bench.workloads import make_workload
from repro.cluster.scheduler import ClusterSpec
from repro.datasets import generate_dataset, preprocess, sample_queries
from repro.distances import get_measure
from repro.repose import Repose, make_baseline


@pytest.fixture(scope="module")
def tdrive():
    data = preprocess(generate_dataset("t-drive", scale=0.0006, seed=4))
    queries = sample_queries(data, count=2, seed=9)
    return data, queries


class TestCrossAlgorithmAgreement:
    def test_all_algorithms_same_hausdorff_results(self, tdrive):
        data, queries = tdrive
        engines = {
            "repose": Repose.build(data, measure="hausdorff", delta=0.15,
                                   num_partitions=8),
            "dft": make_baseline("dft", data, "hausdorff", num_partitions=8),
            "ls": make_baseline("ls", data, "hausdorff", num_partitions=8),
        }
        engines["dft"].build()
        engines["ls"].build()
        for query in queries:
            reference = None
            for name, engine in engines.items():
                got = [round(d, 8)
                       for d in engine.top_k(query, 10).result.distances()]
                if reference is None:
                    reference = got
                else:
                    assert got == reference, f"{name} disagrees"

    def test_all_algorithms_same_frechet_results(self, tdrive):
        data, queries = tdrive
        engines = {
            "repose": Repose.build(data, measure="frechet", delta=0.15,
                                   num_partitions=8),
            "dita": make_baseline("dita", data, "frechet", num_partitions=8),
            "dft": make_baseline("dft", data, "frechet", num_partitions=8),
            "ls": make_baseline("ls", data, "frechet", num_partitions=8),
        }
        for name in ("dita", "dft", "ls"):
            engines[name].build()
        query = queries[0]
        results = {
            name: [round(d, 8)
                   for d in engine.top_k(query, 10).result.distances()]
            for name, engine in engines.items()
        }
        assert len({tuple(r) for r in results.values()}) == 1, results


class TestPartitionIndependence:
    @pytest.mark.parametrize("num_partitions", [1, 3, 8])
    def test_result_independent_of_partition_count(self, tdrive,
                                                   num_partitions):
        data, queries = tdrive
        engine = Repose.build(data, measure="hausdorff", delta=0.15,
                              num_partitions=num_partitions)
        got = engine.top_k(queries[0], 5).result.distances()
        ls = make_baseline("ls", data, "hausdorff", num_partitions=2)
        ls.build()
        want = ls.top_k(queries[0], 5).result.distances()
        assert [round(d, 8) for d in got] == [round(d, 8) for d in want]


class TestMeasureMatrix:
    """Every (algorithm, measure) combination of the paper's Table IV."""

    @pytest.mark.parametrize("measure", ["hausdorff", "frechet", "dtw"])
    def test_repose_supports(self, tdrive, measure):
        data, queries = tdrive
        engine = Repose.build(data, measure=measure, delta=0.15,
                              num_partitions=4)
        assert len(engine.top_k(queries[0], 5).result) == 5

    @pytest.mark.parametrize("measure", ["lcss", "edr", "erp"])
    def test_repose_supports_edit_measures(self, tdrive, measure):
        data, queries = tdrive
        measure_obj = (get_measure(measure, eps=0.01)
                       if measure in ("lcss", "edr") else get_measure(measure))
        engine = Repose.build(data, measure=measure_obj, delta=0.15,
                              num_partitions=4)
        got = engine.top_k(queries[0], 5).result.distances()
        ls = make_baseline("ls", data, measure_obj, num_partitions=4)
        ls.build()
        want = ls.top_k(queries[0], 5).result.distances()
        assert [round(d, 8) for d in got] == [round(d, 8) for d in want]


class TestWorkloadFactory:
    def test_make_workload_shapes(self):
        workload = make_workload("t-drive", "hausdorff", scale=0.0005,
                                 num_queries=3)
        assert workload.cardinality > 0
        assert len(workload.queries) == 3
        assert workload.delta == 0.15

    def test_cap_limits_cardinality(self):
        workload = make_workload("chengdu", "hausdorff", scale=1.0,
                                 num_queries=1, cap=100)
        assert workload.cardinality <= 110  # preprocessing may split a few


class TestSimulatedCluster:
    def test_more_partitions_do_not_change_results(self, tdrive):
        data, queries = tdrive
        spec = ClusterSpec(num_workers=4, cores_per_worker=2)
        engine = Repose.build(data, measure="hausdorff", delta=0.15,
                              num_partitions=16, cluster_spec=spec)
        outcome = engine.top_k(queries[0], 5)
        assert outcome.schedule is not None
        assert outcome.schedule.makespan >= max(outcome.per_partition_seconds) - 1e-9
