#!/usr/bin/env python3
"""Documentation lint: docstring coverage plus markdown link checking.

Dependency-free stand-in for ``interrogate``/``pydocstyle`` (the CI
image only ships numpy + pytest), enforcing two things:

1. **Docstring coverage** on the hot modules this repo documents as
   API surface (``repro.distances.batch``, ``repro.core.store``,
   ``repro.cluster.engine``): the module itself and every public
   class, function and method must carry a docstring.  Coverage below
   ``THRESHOLD`` fails the build.
2. **Markdown links**: every relative link target in ``README.md`` and
   ``docs/*.md`` must exist in the repository.

Run from anywhere: paths resolve relative to the repository root
(this file's parent's parent).  Exit code 0 on success, 1 with a
per-violation report otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Modules whose public API must be fully documented.
DOC_MODULES = [
    "src/repro/distances/batch.py",
    "src/repro/distances/kernels/__init__.py",
    "src/repro/distances/kernels/cnative.py",
    "src/repro/distances/kernels/numba_backend.py",
    "src/repro/core/store.py",
    "src/repro/core/search.py",
    "src/repro/cluster/engine.py",
    "src/repro/cluster/planner.py",
    "src/repro/cluster/driver.py",
    "src/repro/cluster/batch.py",
    "src/repro/cluster/rdd.py",
    "src/repro/cluster/service.py",
    "src/repro/cluster/query_index.py",
    "src/repro/testing/faults.py",
    "src/repro/testing/clock.py",
]

#: Minimum fraction of public objects (module included) with docstrings.
THRESHOLD = 1.0

#: Markdown files whose relative links must resolve.
DOC_FILES = ["README.md"]
DOC_GLOBS = ["docs/*.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _doc_targets(tree: ast.Module):
    """Yield (qualified name, node) for the module and every public
    class, function and method."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.name, node
            for sub in node.body:
                if (isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and (_is_public(sub.name) or sub.name == "__init__")):
                    # __init__ may document itself through the class
                    # docstring (numpy style); only plain publics count.
                    if sub.name == "__init__":
                        continue
                    yield f"{node.name}.{sub.name}", sub


def check_docstrings() -> list[str]:
    problems = []
    for rel in DOC_MODULES:
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: module missing")
            continue
        tree = ast.parse(path.read_text())
        targets = list(_doc_targets(tree))
        missing = [name for name, node in targets
                   if not ast.get_docstring(node)]
        covered = len(targets) - len(missing)
        coverage = covered / len(targets) if targets else 1.0
        if coverage < THRESHOLD:
            for name in missing:
                problems.append(f"{rel}: missing docstring on {name}")
            problems.append(
                f"{rel}: docstring coverage {coverage:.0%} "
                f"< required {THRESHOLD:.0%}")
    return problems


def _markdown_files() -> list[Path]:
    files = [REPO / name for name in DOC_FILES]
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO.glob(pattern)))
    return [f for f in files if f.exists()]


def check_links() -> list[str]:
    problems = []
    required = [REPO / "README.md", REPO / "docs" / "architecture.md"]
    for path in required:
        if not path.exists():
            problems.append(
                f"{path.relative_to(REPO)}: required document missing")
    for path in _markdown_files():
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}: broken link -> {target}")
    return problems


def main() -> int:
    problems = check_docstrings() + check_links()
    if problems:
        print("documentation check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    modules = ", ".join(DOC_MODULES)
    print(f"documentation check passed ({modules}; markdown links ok)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
